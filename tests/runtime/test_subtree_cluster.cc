/** @file Unit tests for subtree clustering (Figure 9). */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "runtime/machine.hh"
#include "runtime/layout_backend.hh"
#include "runtime/sim_allocator.hh"
#include "runtime/subtree_cluster.hh"

namespace memfwd
{
namespace
{

// Binary-tree node: tag(0), left(8), right(16), payload(24) = 32B.
constexpr unsigned node_bytes = 32;
constexpr unsigned off_tag = 0;
constexpr unsigned off_left = 8;
constexpr unsigned off_right = 16;
constexpr unsigned off_payload = 24;

struct TreeRig
{
    Machine m;
    SimAllocator alloc{m};
    RelocationPool pool{alloc, 1 << 20};
    ForwardingBackend fwd{m};
    Addr root_handle = 0;

    TreeRig() { root_handle = alloc.alloc(wordBytes); }

    TreeDesc
    desc() const
    {
        TreeDesc d;
        d.node_bytes = node_bytes;
        d.child_offsets = {off_left, off_right};
        return d;
    }

    /** Build a complete binary tree of the given depth; payload =
     *  heap index.  Returns the root address. */
    Addr
    build(unsigned depth)
    {
        const unsigned n = (1u << depth) - 1;
        std::vector<Addr> nodes(n);
        for (unsigned i = 0; i < n; ++i) {
            nodes[i] = alloc.alloc(node_bytes, Placement::scattered);
            m.access(Access::store(nodes[i] + off_tag, 8, 0));
            m.access(Access::store(nodes[i] + off_payload, 8, i));
        }
        for (unsigned i = 0; i < n; ++i) {
            const unsigned l = 2 * i + 1, r = 2 * i + 2;
            m.access(Access::store(nodes[i] + off_left, 8, l < n ? nodes[l] : 0));
            m.access(Access::store(nodes[i] + off_right, 8, r < n ? nodes[r] : 0));
        }
        m.access(Access::store(root_handle, 8, nodes[0]));
        return nodes[0];
    }

    /** In-order payload walk through current pointers. */
    std::vector<std::uint64_t>
    inorder()
    {
        std::vector<std::uint64_t> out;
        walk(static_cast<Addr>(m.access(Access::load(root_handle, 8)).value), out);
        return out;
    }

    void
    walk(Addr node, std::vector<std::uint64_t> &out)
    {
        if (node == 0)
            return;
        walk(static_cast<Addr>(m.access(Access::load(node + off_left, 8)).value), out);
        out.push_back(m.access(Access::load(node + off_payload, 8)).value);
        walk(static_cast<Addr>(m.access(Access::load(node + off_right, 8)).value), out);
    }
};

TEST(SubtreeCluster, EmptyTree)
{
    TreeRig rig;
    rig.m.access(Access::store(rig.root_handle, 8, 0));
    const ClusterResult r = subtreeCluster(rig.fwd, rig.root_handle,
                                           rig.desc(), rig.pool, 128);
    EXPECT_EQ(r.nodes, 0u);
}

TEST(SubtreeCluster, PreservesTreeContents)
{
    TreeRig rig;
    rig.build(5);
    const auto before = rig.inorder();
    const ClusterResult r = subtreeCluster(rig.fwd, rig.root_handle,
                                           rig.desc(), rig.pool, 128);
    EXPECT_EQ(r.nodes, 31u);
    EXPECT_EQ(rig.inorder(), before);
}

TEST(SubtreeCluster, RootHandleUpdated)
{
    TreeRig rig;
    const Addr old_root = rig.build(3);
    const ClusterResult r = subtreeCluster(rig.fwd, rig.root_handle,
                                           rig.desc(), rig.pool, 128);
    EXPECT_EQ(rig.m.access(Access::load(rig.root_handle, 8)).value, r.new_root);
    EXPECT_NE(r.new_root, old_root);
}

TEST(SubtreeCluster, ParentAndChildrenShareCluster)
{
    // Figure 9: with 32B nodes and 128B clusters, a node and both its
    // children (3 x 32B = 96B) fit in one cluster.
    TreeRig rig;
    rig.build(5);
    subtreeCluster(rig.fwd, rig.root_handle, rig.desc(), rig.pool, 128);
    const Addr root =
        static_cast<Addr>(rig.m.access(Access::load(rig.root_handle, 8)).value);
    const Addr left =
        static_cast<Addr>(rig.m.access(Access::load(root + off_left, 8)).value);
    const Addr right =
        static_cast<Addr>(rig.m.access(Access::load(root + off_right, 8)).value);
    EXPECT_EQ(root / 128, left / 128);
    EXPECT_EQ(root / 128, right / 128);
}

TEST(SubtreeCluster, ClusterCountMatchesCapacity)
{
    TreeRig rig;
    rig.build(5); // 31 nodes
    const ClusterResult r = subtreeCluster(rig.fwd, rig.root_handle,
                                           rig.desc(), rig.pool, 128);
    // Capacity 4 nodes per 128B cluster: at least ceil(31/4) clusters.
    EXPECT_GE(r.clusters, 8u);
    EXPECT_EQ(r.pool_bytes, 31u * node_bytes);
}

TEST(SubtreeCluster, StalePointersForward)
{
    TreeRig rig;
    const Addr old_root = rig.build(4);
    const std::uint64_t want =
        rig.m.access(Access::load(old_root + off_payload, 8)).value;
    subtreeCluster(rig.fwd, rig.root_handle, rig.desc(), rig.pool, 128);
    const AccessResult stale = rig.m.access(Access::load(old_root + off_payload, 8));
    EXPECT_EQ(stale.value, want);
    EXPECT_EQ(stale.hops, 1u);
}

TEST(SubtreeCluster, TraversalAfterwardsDoesNotForward)
{
    TreeRig rig;
    rig.build(4);
    subtreeCluster(rig.fwd, rig.root_handle, rig.desc(), rig.pool, 128);
    const std::uint64_t walks = rig.m.forwarding().stats().walks;
    rig.inorder();
    EXPECT_EQ(rig.m.forwarding().stats().walks, walks);
}

TEST(SubtreeCluster, LeafPredicateKeepsLeavesInPlace)
{
    // Mark leaves with tag 1 and tell the clusterer to skip them, as
    // BH does for bodies.
    TreeRig rig;
    rig.build(4); // 15 nodes, 8 leaves
    // Tag the leaves.
    std::vector<std::uint64_t> pre = rig.inorder();
    // Walk and tag: leaves are nodes with no children.
    std::vector<Addr> stack{
        static_cast<Addr>(rig.m.access(Access::load(rig.root_handle, 8)).value)};
    std::vector<Addr> leaves;
    while (!stack.empty()) {
        const Addr n = stack.back();
        stack.pop_back();
        const Addr l =
            static_cast<Addr>(rig.m.access(Access::load(n + off_left, 8)).value);
        const Addr r =
            static_cast<Addr>(rig.m.access(Access::load(n + off_right, 8)).value);
        if (l == 0 && r == 0) {
            rig.m.access(Access::store(n + off_tag, 8, 1));
            leaves.push_back(n);
        } else {
            if (l)
                stack.push_back(l);
            if (r)
                stack.push_back(r);
        }
    }

    TreeDesc d = rig.desc();
    d.leaf_tag_offset = off_tag;
    d.leaf_tag_value = 1;
    const ClusterResult res = subtreeCluster(rig.fwd, rig.root_handle, d,
                                             rig.pool, 128);
    EXPECT_EQ(res.nodes, 7u); // only the internal nodes moved
    for (Addr leaf : leaves)
        EXPECT_FALSE(rig.m.mem().fbit(leaf));
    EXPECT_EQ(rig.inorder(), pre);
}

TEST(SubtreeCluster, HugeNodesDegradeGracefully)
{
    // Node larger than the cluster: capacity clamps to 1, clustering
    // still packs nodes contiguously and preserves the tree.
    TreeRig rig;
    rig.build(3);
    const auto before = rig.inorder();
    const ClusterResult r = subtreeCluster(rig.fwd, rig.root_handle,
                                           rig.desc(), rig.pool, 16);
    EXPECT_EQ(r.nodes, 7u);
    EXPECT_EQ(rig.inorder(), before);
}

} // namespace
} // namespace memfwd
