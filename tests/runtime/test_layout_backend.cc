/**
 * @file
 * LayoutBackend conformance suite: one battery of behavioural tests
 * run against all three backends, plus per-backend contract tests and
 * a cross-backend differential on the kv_server workload.
 *
 * The shared battery pins down the part of the contract every backend
 * must honour identically: allocate/write/resolve/read-back data
 * fidelity, free + re-allocate, objectBytes, and stats bookkeeping.
 * Where the backends legitimately diverge (who may relocate, what a
 * stale pointer means, what resolve costs) the per-backend tests pin
 * each side of the divergence explicitly.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cycle_check.hh"
#include "runtime/layout_backend.hh"
#include "runtime/machine.hh"
#include "runtime/sim_allocator.hh"
#include "workloads/workload.hh"
#include "workloads/workload_util.hh"

namespace memfwd
{
namespace
{

constexpr unsigned obj_words = 6;
constexpr Addr obj_bytes = obj_words * wordBytes;

struct Rig
{
    Machine machine;
    SimAllocator alloc;
    std::unique_ptr<LayoutBackend> backend;

    explicit Rig(BackendKind kind)
        : machine(configFor(kind)), alloc(machine, /*seed=*/7),
          backend(makeLayoutBackend(machine, alloc))
    {
    }

    static MachineConfig
    configFor(BackendKind kind)
    {
        MachineConfig cfg;
        cfg.backend(kind);
        return cfg;
    }
};

/** Fill the object behind @p ref with a ref-independent pattern. */
void
fillObject(Rig &r, BackendRef ref, std::uint64_t salt)
{
    const Addr a = r.backend->peekAddr(ref);
    for (unsigned w = 0; w < obj_words; ++w)
        r.machine.access(Access::store(a + w * wordBytes, wordBytes,
                                       mix64(salt, w)));
}

/** Fold the object's words (read through resolve()) into a checksum. */
std::uint64_t
readChecksum(Rig &r, BackendRef ref)
{
    const ResolvedRef res = r.backend->resolve(ref);
    std::uint64_t sum = 0;
    for (unsigned w = 0; w < obj_words; ++w) {
        const AccessResult v = r.machine.access(
            Access::load(res.addr + w * wordBytes, wordBytes, res.ready));
        sum = mix64(sum, v.value);
    }
    return sum;
}

class BackendConformance : public ::testing::TestWithParam<BackendKind>
{
};

// ----- shared battery: identical behaviour required ---------------------

TEST_P(BackendConformance, AllocateResolveReadBack)
{
    Rig r(GetParam());
    const BackendRef ref = r.backend->allocate(obj_bytes);
    fillObject(r, ref, 0xAB);
    const ResolvedRef res = r.backend->resolve(ref);
    EXPECT_EQ(res.addr, r.backend->peekAddr(ref));
    for (unsigned w = 0; w < obj_words; ++w) {
        const AccessResult v = r.machine.access(
            Access::load(res.addr + w * wordBytes, wordBytes, res.ready));
        EXPECT_EQ(v.value, mix64(0xAB, w));
    }
    EXPECT_EQ(r.backend->objectBytes(ref), obj_bytes);
    EXPECT_EQ(r.backend->stats().allocs, 1u);
}

TEST_P(BackendConformance, ChecksumIdenticalAcrossBackends)
{
    // The same alloc/write/read script must produce the same data (and
    // hence checksum) on every backend — only timing may differ.
    Rig r(GetParam());
    std::uint64_t sum = 0;
    std::vector<BackendRef> refs;
    for (unsigned i = 0; i < 8; ++i) {
        const BackendRef ref =
            r.backend->allocate(obj_bytes, Placement::scattered);
        fillObject(r, ref, 0x100 + i);
        refs.push_back(ref);
    }
    for (const BackendRef ref : refs)
        sum = mix64(sum, readChecksum(r, ref));
    // Golden value computed host-side from the same pure functions.
    std::uint64_t expect = 0;
    for (unsigned i = 0; i < 8; ++i) {
        std::uint64_t obj = 0;
        for (unsigned w = 0; w < obj_words; ++w)
            obj = mix64(obj, mix64(0x100 + i, w));
        expect = mix64(expect, obj);
    }
    EXPECT_EQ(sum, expect);
}

TEST_P(BackendConformance, FreeThenReallocate)
{
    Rig r(GetParam());
    const BackendRef a = r.backend->allocate(obj_bytes);
    fillObject(r, a, 1);
    r.backend->free(a);
    EXPECT_EQ(r.backend->stats().frees, 1u);
    EXPECT_EQ(r.backend->objectBytes(a), 0u);
    // The heap (and, under handles, the slot pool) must be reusable.
    const BackendRef b = r.backend->allocate(obj_bytes);
    fillObject(r, b, 2);
    EXPECT_EQ(readChecksum(r, b), [] {
        std::uint64_t obj = 0;
        for (unsigned w = 0; w < obj_words; ++w)
            obj = mix64(obj, mix64(2, w));
        return obj;
    }());
    r.backend->free(b);
}

TEST_P(BackendConformance, ResolveCountsAndPeekIsUntimed)
{
    Rig r(GetParam());
    const BackendRef ref = r.backend->allocate(obj_bytes);
    (void)r.backend->resolve(ref);
    (void)r.backend->resolve(ref);
    EXPECT_EQ(r.backend->stats().resolves, 2u);
    const std::uint64_t refs = r.machine.refsExecuted();
    (void)r.backend->peekAddr(ref);
    EXPECT_EQ(r.machine.refsExecuted(), refs)
        << "peekAddr must not touch the timed machine";
}

TEST_P(BackendConformance, CompactObjectPreservesDataWhenSupported)
{
    Rig r(GetParam());
    // Age the heap a little so first_fit has a hole to move into.
    const BackendRef hole = r.backend->allocate(obj_bytes);
    const BackendRef ref =
        r.backend->allocate(obj_bytes, Placement::scattered);
    fillObject(r, ref, 0xC0);
    const std::uint64_t before = readChecksum(r, ref);
    r.backend->free(hole);

    const bool moved = r.backend->compactObject(ref);
    EXPECT_EQ(moved, r.backend->canRelocate());
    if (moved) {
        EXPECT_EQ(r.backend->stats().compactions, 1u);
        EXPECT_EQ(r.backend->stats().relocations, 1u);
    } else {
        EXPECT_GE(r.backend->stats().refusals, 1u);
    }
    // The SAME ref must keep working and see the same data either way.
    EXPECT_EQ(readChecksum(r, ref), before);
    EXPECT_EQ(r.backend->objectBytes(ref), obj_bytes);
}

TEST_P(BackendConformance, MachineRegistrationAndSnapshot)
{
    MachineConfig cfg;
    cfg.backend(GetParam());
    Machine machine(cfg);
    EXPECT_FALSE(machine.backendSeen());
    {
        SimAllocator alloc(machine, 7);
        const auto backend = makeLayoutBackend(machine, alloc);
        EXPECT_TRUE(machine.backendSeen());
        (void)backend->allocate(obj_bytes);
    }
    // After destruction the stats snapshot (and kind) survive.
    EXPECT_TRUE(machine.backendSeen());
    EXPECT_EQ(machine.backendKindSeen(), GetParam());
    EXPECT_EQ(machine.backendStats().allocs, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendConformance,
                         ::testing::Values(BackendKind::forwarding,
                                           BackendKind::handles,
                                           BackendKind::none),
                         [](const auto &info) {
                             return std::string(
                                 backendKindName(info.param));
                         });

// ----- per-backend contract: where they legitimately diverge ------------

TEST(ForwardingBackendContract, RawRelocateLeavesChainStalePointersSafe)
{
    Rig r(BackendKind::forwarding);
    EXPECT_TRUE(r.backend->stalePointersSafe());
    const BackendRef ref = r.backend->allocate(obj_bytes);
    fillObject(r, ref, 9);
    const Addr old_addr = r.backend->peekAddr(ref);

    const Addr tgt = r.alloc.alloc(obj_bytes);
    ASSERT_TRUE(r.backend->relocate(old_addr, tgt, obj_words));
    EXPECT_EQ(r.backend->stats().relocations, 1u);
    EXPECT_EQ(r.backend->stats().relocated_words, obj_words);

    // The stale (old) address still reads the data — via the chain.
    const AccessResult v = r.machine.access(Access::load(old_addr, wordBytes));
    EXPECT_EQ(v.value, mix64(9, 0));
    EXPECT_GE(v.hops, 1u);
    // resolve() stays the identity: refs ARE addresses under forwarding.
    EXPECT_EQ(r.backend->resolve(ref).addr, ref);
    EXPECT_EQ(r.backend->stats().handle_derefs, 0u);
}

TEST(ForwardingBackendContract, CompactionPaysHopsNotDerefs)
{
    Rig r(BackendKind::forwarding);
    const BackendRef hole = r.backend->allocate(obj_bytes);
    const BackendRef ref =
        r.backend->allocate(obj_bytes, Placement::scattered);
    fillObject(r, ref, 3);
    r.backend->free(hole);
    ASSERT_TRUE(r.backend->compactObject(ref));
    // Reads through the (now stale) ref pay forwarding hops.
    const ResolvedRef res = r.backend->resolve(ref);
    const AccessResult v =
        r.machine.access(Access::load(res.addr, wordBytes, res.ready));
    EXPECT_EQ(v.value, mix64(3, 0));
    EXPECT_GE(v.hops, 1u);
    EXPECT_EQ(r.backend->stats().handle_derefs, 0u);
}

TEST(ForwardingBackendContract, CyclicRelocatePropagatesAfterRollback)
{
    // The transactional relocate()'s failure mode must survive the
    // interface: a cyclic source chain throws through the backend and
    // the attempt is not counted as a relocation.
    Rig r(BackendKind::forwarding);
    r.machine.access(Access::store(0x1000, 8, 1));
    r.machine.access(Access::store(0x1008, 8, 2));
    r.machine.mem().unforwardedWrite(0x1010, 0x7000, true);
    r.machine.mem().unforwardedWrite(0x7000, 0x1010, true);

    EXPECT_THROW(r.backend->relocate(0x1000, 0x9000, 3),
                 ForwardingCycleError);
    EXPECT_EQ(r.backend->stats().relocations, 0u);
    EXPECT_EQ(r.backend->stats().relocated_words, 0u);
    // Rolled back: the first word is unforwarded again.
    EXPECT_FALSE(r.machine.mem().fbit(0x1000));
    EXPECT_EQ(r.machine.access(Access::load(0x1000, 8)).value, 1u);
}

TEST(HandleBackendContract, RefusesRawRelocateResolvesThroughTable)
{
    Rig r(BackendKind::handles);
    EXPECT_FALSE(r.backend->stalePointersSafe());
    const BackendRef ref = r.backend->allocate(obj_bytes);
    const Addr obj = r.backend->peekAddr(ref);
    EXPECT_NE(ref, obj) << "a handle ref is the slot, not the object";

    // Raw-range relocation is exactly what the table cannot mediate.
    const Addr tgt = r.alloc.alloc(obj_bytes);
    EXPECT_FALSE(r.backend->relocate(obj, tgt, obj_words));
    EXPECT_EQ(r.backend->stats().refusals, 1u);
    EXPECT_EQ(r.backend->stats().relocations, 0u);

    // Every resolve is a timed dependent load of the slot.
    const std::uint64_t derefs = r.backend->stats().handle_derefs;
    const ResolvedRef res = r.backend->resolve(ref);
    EXPECT_EQ(res.addr, obj);
    EXPECT_EQ(r.backend->stats().handle_derefs, derefs + 1);
}

TEST(HandleBackendContract, CompactionMovesObjectAndRetargetsSlot)
{
    Rig r(BackendKind::handles);
    auto *hb = static_cast<HandleBackend *>(r.backend.get());
    const BackendRef hole = r.backend->allocate(obj_bytes);
    const BackendRef ref =
        r.backend->allocate(obj_bytes, Placement::scattered);
    fillObject(r, ref, 0xF00D);
    const std::uint64_t before = readChecksum(r, ref);
    const Addr old_obj = r.backend->peekAddr(ref);
    r.backend->free(hole);
    EXPECT_EQ(hb->liveHandles(), 1u);

    ASSERT_TRUE(r.backend->compactObject(ref));
    const Addr new_obj = r.backend->peekAddr(ref);
    EXPECT_NE(new_obj, old_obj);
    // Same ref (slot), new address, same data, and no forwarding state:
    // the old copy was freed outright, not chained.
    EXPECT_EQ(readChecksum(r, ref), before);
    EXPECT_FALSE(r.machine.mem().fbit(old_obj));
    EXPECT_EQ(r.machine.forwarding().stats().hops, 0u);
}

TEST(NullBackendContract, RefusesEverythingButStaysFunctional)
{
    Rig r(BackendKind::none);
    EXPECT_FALSE(r.backend->canRelocate());
    EXPECT_TRUE(r.backend->stalePointersSafe()); // nothing ever moves
    const BackendRef ref = r.backend->allocate(obj_bytes);
    fillObject(r, ref, 5);
    const Addr before = r.backend->peekAddr(ref);

    const Addr tgt = r.alloc.alloc(obj_bytes);
    EXPECT_FALSE(r.backend->relocate(ref, tgt, obj_words));
    EXPECT_FALSE(r.backend->compactObject(ref));
    EXPECT_EQ(r.backend->stats().refusals, 2u);
    EXPECT_EQ(r.backend->peekAddr(ref), before) << "heap must be untouched";
    const AccessResult v = r.machine.access(Access::load(before, wordBytes));
    EXPECT_EQ(v.value, mix64(5, 0));
    EXPECT_EQ(v.hops, 0u);
}

// ----- workload gating --------------------------------------------------

TEST(BackendSupport, RawPointerWorkloadsRejectHandles)
{
    // The paper's eight traffic in raw pointers: forwarding/none only.
    for (const std::string &name : workloadNames()) {
        const auto w = makeWorkload(name);
        EXPECT_TRUE(w->supportsBackend(BackendKind::forwarding)) << name;
        EXPECT_TRUE(w->supportsBackend(BackendKind::none)) << name;
        EXPECT_FALSE(w->supportsBackend(BackendKind::handles)) << name;
    }
    // kv_server is fully mediated and runs everywhere.
    const auto kv = makeWorkload("kv_server");
    EXPECT_TRUE(kv->supportsBackend(BackendKind::handles));
    EXPECT_EQ(extendedWorkloadNames().size(), workloadNames().size() + 1);
}

// ----- differential: kv_server answers identically on all three --------

TEST(BackendDifferential, KvServerChecksumInvariantAcrossBackends)
{
    WorkloadParams params;
    params.scale = 0.05;

    std::uint64_t first_sum = 0;
    bool have_first = false;
    for (const BackendKind kind :
         {BackendKind::forwarding, BackendKind::handles, BackendKind::none}) {
        MachineConfig cfg;
        cfg.backend(kind);
        Machine machine(cfg);
        const auto w = makeWorkload("kv_server", params);
        WorkloadVariant variant;
        variant.layout_opt = true;
        w->run(machine, variant);
        if (!have_first) {
            first_sum = w->checksum();
            have_first = true;
        } else {
            EXPECT_EQ(w->checksum(), first_sum)
                << "backend " << backendKindName(kind)
                << " diverged functionally";
        }
        // Sanity: the run actually exercised the backend.
        EXPECT_TRUE(machine.backendSeen());
        EXPECT_GT(machine.backendStats().allocs, 0u);
        if (kind == BackendKind::none) {
            EXPECT_EQ(machine.backendStats().relocations, 0u);
        }
    }
}

} // namespace
} // namespace memfwd
