/** @file Unit tests for the forwarding-based compacting collector. */

#include <gtest/gtest.h>

#include "runtime/compacting_heap.hh"
#include "runtime/machine.hh"
#include "runtime/sim_allocator.hh"

namespace memfwd
{
namespace
{

struct GcRig
{
    Machine m;
    SimAllocator alloc{m};
    CompactingHeap heap{m, alloc, 1 << 16};
    Addr root_slot;

    GcRig()
    {
        root_slot = alloc.alloc(8);
        m.access(Access::store(root_slot, 8, 0));
    }
};

TEST(CompactingHeap, AllocWritesHeaderAndZeroedPayload)
{
    GcRig rig;
    const Addr obj = rig.heap.alloc(3, 0b001);
    EXPECT_TRUE(rig.heap.inActiveSpace(obj));
    const std::uint64_t header = rig.m.peek(obj, 8);
    EXPECT_EQ(header & 0xff, 3u);
    EXPECT_EQ(header >> 8, 0b001u);
    for (unsigned i = 0; i < 3; ++i)
        EXPECT_EQ(rig.m.peek(CompactingHeap::field(obj, i), 8), 0u);
}

TEST(CompactingHeap, CollectPreservesReachableData)
{
    GcRig rig;
    // root -> a -> b, with payloads.
    const Addr b = rig.heap.alloc(2, 0);
    rig.m.access(Access::store(CompactingHeap::field(b, 0), 8, 222));
    const Addr a = rig.heap.alloc(2, 0b001); // word 0 is a pointer
    rig.m.access(Access::store(CompactingHeap::field(a, 0), 8, b));
    rig.m.access(Access::store(CompactingHeap::field(a, 1), 8, 111));
    rig.m.access(Access::store(rig.root_slot, 8, a));

    rig.heap.collect({rig.root_slot});

    const Addr new_a =
        static_cast<Addr>(rig.m.access(Access::load(rig.root_slot, 8)).value);
    EXPECT_NE(new_a, a);
    EXPECT_TRUE(rig.heap.inActiveSpace(new_a));
    EXPECT_EQ(rig.m.access(Access::load(CompactingHeap::field(new_a, 1), 8)).value,
              111u);
    const Addr new_b = static_cast<Addr>(
        rig.m.access(Access::load(CompactingHeap::field(new_a, 0), 8)).value);
    EXPECT_TRUE(rig.heap.inActiveSpace(new_b));
    EXPECT_EQ(rig.m.access(Access::load(CompactingHeap::field(new_b, 0), 8)).value,
              222u);
}

TEST(CompactingHeap, GarbageIsNotCopied)
{
    GcRig rig;
    const Addr live = rig.heap.alloc(1, 0);
    rig.m.access(Access::store(CompactingHeap::field(live, 0), 8, 1));
    for (int i = 0; i < 10; ++i)
        rig.heap.alloc(4, 0); // unreachable
    rig.m.access(Access::store(rig.root_slot, 8, live));

    const Addr used_before = rig.heap.used();
    rig.heap.collect({rig.root_slot});
    EXPECT_LT(rig.heap.used(), used_before);
    EXPECT_EQ(rig.heap.stats().objects_copied, 1u);
    EXPECT_GT(rig.heap.stats().bytes_reclaimed, 0u);
}

TEST(CompactingHeap, SharedObjectCopiedOnce)
{
    GcRig rig;
    // Two roots point at the same object (a DAG, not a tree).
    const Addr shared = rig.heap.alloc(1, 0);
    rig.m.access(Access::store(CompactingHeap::field(shared, 0), 8, 77));
    const Addr r2 = rig.alloc.alloc(8);
    rig.m.access(Access::store(rig.root_slot, 8, shared));
    rig.m.access(Access::store(r2, 8, shared));

    rig.heap.collect({rig.root_slot, r2});
    EXPECT_EQ(rig.heap.stats().objects_copied, 1u);
    // Both roots updated to the SAME new address.
    EXPECT_EQ(rig.m.access(Access::load(rig.root_slot, 8)).value,
              rig.m.access(Access::load(r2, 8)).value);
}

TEST(CompactingHeap, CyclicGraphsTerminate)
{
    GcRig rig;
    const Addr a = rig.heap.alloc(1, 0b001);
    const Addr b = rig.heap.alloc(1, 0b001);
    rig.m.access(Access::store(CompactingHeap::field(a, 0), 8, b));
    rig.m.access(Access::store(CompactingHeap::field(b, 0), 8, a)); // cycle
    rig.m.access(Access::store(rig.root_slot, 8, a));

    rig.heap.collect({rig.root_slot});
    EXPECT_EQ(rig.heap.stats().objects_copied, 2u);
    const Addr na =
        static_cast<Addr>(rig.m.access(Access::load(rig.root_slot, 8)).value);
    const Addr nb = static_cast<Addr>(
        rig.m.access(Access::load(CompactingHeap::field(na, 0), 8)).value);
    EXPECT_EQ(rig.m.access(Access::load(CompactingHeap::field(nb, 0), 8)).value, na);
}

TEST(CompactingHeap, StalePointersForwardAfterCollection)
{
    // The memory-forwarding bonus: a pointer the collector never saw
    // still works after the flip.
    GcRig rig;
    const Addr obj = rig.heap.alloc(1, 0);
    rig.m.access(Access::store(CompactingHeap::field(obj, 0), 8, 1234));
    rig.m.access(Access::store(rig.root_slot, 8, obj));
    const Addr hidden = obj; // a pointer in a register somewhere

    rig.heap.collect({rig.root_slot});

    const AccessResult r =
        rig.m.access(Access::load(CompactingHeap::field(hidden, 0), 8));
    EXPECT_EQ(r.value, 1234u);
    EXPECT_EQ(r.hops, 1u);
}

TEST(CompactingHeap, GraceWindowEndsAtNextCollection)
{
    GcRig rig;
    const Addr obj = rig.heap.alloc(1, 0);
    rig.m.access(Access::store(CompactingHeap::field(obj, 0), 8, 55));
    rig.m.access(Access::store(rig.root_slot, 8, obj));

    rig.heap.collect({rig.root_slot}); // obj's space vacated
    rig.heap.collect({rig.root_slot}); // ...and now reused: words wiped

    // The doubly-stale pointer no longer forwards (its space was
    // reinitialized); the CURRENT root still reads correctly.
    EXPECT_FALSE((rig.m.access(Access::readFBit(obj)).value != 0));
    const Addr cur =
        static_cast<Addr>(rig.m.access(Access::load(rig.root_slot, 8)).value);
    EXPECT_EQ(rig.m.access(Access::load(CompactingHeap::field(cur, 0), 8)).value, 55u);
}

TEST(CompactingHeap, CompactionRestoresContiguity)
{
    GcRig rig;
    // Interleave live and garbage objects, then collect: survivors
    // become contiguous in allocation order.
    std::vector<Addr> live;
    std::vector<Addr> live_slots;
    for (int i = 0; i < 8; ++i) {
        const Addr o = rig.heap.alloc(1, 0);
        rig.m.access(Access::store(CompactingHeap::field(o, 0), 8, i));
        live.push_back(o);
        rig.heap.alloc(5, 0); // garbage spacer
        const Addr slot = rig.alloc.alloc(8);
        rig.m.access(Access::store(slot, 8, o));
        live_slots.push_back(slot);
    }

    rig.heap.collect(live_slots);

    Addr prev = 0;
    for (int i = 0; i < 8; ++i) {
        const Addr cur =
            static_cast<Addr>(rig.m.access(Access::load(live_slots[i], 8)).value);
        EXPECT_EQ(rig.m.access(Access::load(CompactingHeap::field(cur, 0), 8)).value,
                  static_cast<std::uint64_t>(i));
        if (prev) {
            EXPECT_EQ(cur, prev + 16); // header + 1 payload word
        }
        prev = cur;
    }
}

TEST(CompactingHeap, ManyCollectionsStayConsistent)
{
    GcRig rig;
    // A persistent linked structure surviving repeated collections
    // amid garbage churn.
    Addr head = rig.heap.alloc(2, 0b001);
    rig.m.access(Access::store(CompactingHeap::field(head, 1), 8, 0));
    rig.m.access(Access::store(rig.root_slot, 8, head));
    for (int n = 1; n <= 6; ++n) {
        // Prepend a node.
        const Addr node = rig.heap.alloc(2, 0b001);
        rig.m.access(Access::store(CompactingHeap::field(node, 0), 8,
                    rig.m.access(Access::load(rig.root_slot, 8)).value));
        rig.m.access(Access::store(CompactingHeap::field(node, 1), 8, n));
        rig.m.access(Access::store(rig.root_slot, 8, node));
        // Garbage.
        for (int g = 0; g < 5; ++g)
            rig.heap.alloc(3, 0);
        rig.heap.collect({rig.root_slot});
    }
    // Walk: values 6,5,4,3,2,1,0-tail.
    Addr cur = static_cast<Addr>(rig.m.access(Access::load(rig.root_slot, 8)).value);
    for (int expect = 6; expect >= 1; --expect) {
        EXPECT_EQ(rig.m.access(Access::load(CompactingHeap::field(cur, 1), 8)).value,
                  static_cast<std::uint64_t>(expect));
        cur = static_cast<Addr>(
            rig.m.access(Access::load(CompactingHeap::field(cur, 0), 8)).value);
    }
    EXPECT_EQ(rig.heap.stats().collections, 6u);
}

TEST(CompactingHeapDeathTest, OversizeObjectRejected)
{
    GcRig rig;
    EXPECT_DEATH(rig.heap.alloc(0, 0), "payload");
    EXPECT_DEATH(rig.heap.alloc(57, 0), "payload");
    EXPECT_DEATH(rig.heap.alloc(2, 0b100), "beyond the payload");
}

TEST(CompactingHeapDeathTest, ExhaustionIsFatalNotSilent)
{
    Machine m;
    SimAllocator alloc(m);
    CompactingHeap heap(m, alloc, 256);
    heap.alloc(20, 0);
    EXPECT_EXIT(
        {
            heap.alloc(20, 0);
            heap.alloc(20, 0);
        },
        ::testing::ExitedWithCode(1), "exhausted");
}

} // namespace
} // namespace memfwd
