/** @file Unit tests for the simulated-heap allocator. */

#include <gtest/gtest.h>

#include <set>

#include "runtime/machine.hh"
#include "runtime/relocation.hh"
#include "runtime/sim_allocator.hh"

namespace memfwd
{
namespace
{

TEST(SimAllocator, AllocationsAreWordAlignedAndDisjoint)
{
    Machine m;
    SimAllocator alloc(m);
    std::set<std::pair<Addr, Addr>> ranges;
    for (int i = 0; i < 200; ++i) {
        const Addr bytes = 8 + (i % 5) * 8;
        const Addr a = alloc.alloc(bytes, i % 2 ? Placement::scattered
                                                : Placement::sequential);
        EXPECT_TRUE(isWordAligned(a));
        for (const auto &[s, e] : ranges)
            EXPECT_TRUE(a + bytes <= s || a >= e);
        ranges.emplace(a, a + bytes);
    }
}

TEST(SimAllocator, OddSizesRoundUpToWords)
{
    Machine m;
    SimAllocator alloc(m);
    const Addr a = alloc.alloc(13);
    EXPECT_EQ(alloc.allocationSize(a), 16u);
}

TEST(SimAllocator, FreshMemoryHasClearForwardingBits)
{
    // Section 3.3: the OS must hand out memory with clear forwarding
    // bits.  Dirty arena space *before* it is allocated and confirm
    // the allocation sweep cleans it.
    Machine m;
    SimAllocator alloc(m);
    const Addr a = alloc.alloc(64, Placement::sequential);
    m.access(Access::unforwardedWrite(a + 64, 0xdead, true));
    const Addr b = alloc.alloc(64, Placement::sequential);
    EXPECT_EQ(b, a + 64);
    EXPECT_FALSE((m.access(Access::readFBit(b)).value != 0));
    EXPECT_EQ(m.access(Access::unforwardedRead(b)).value, 0u);
}

TEST(SimAllocator, ScatteredPlacementSpreadsBlocks)
{
    Machine m;
    SimAllocator alloc(m);
    // Scattered blocks should not be contiguous in general.
    std::vector<Addr> addrs;
    for (int i = 0; i < 50; ++i)
        addrs.push_back(alloc.alloc(32, Placement::scattered));
    unsigned adjacent = 0;
    for (std::size_t i = 1; i < addrs.size(); ++i) {
        if (addrs[i] == addrs[i - 1] + 32 ||
            addrs[i - 1] == addrs[i] + 32) {
            ++adjacent;
        }
    }
    EXPECT_LT(adjacent, 3u);
}

TEST(SimAllocator, SequentialPlacementPacksTightly)
{
    Machine m;
    SimAllocator alloc(m);
    const Addr a = alloc.alloc(32, Placement::sequential);
    const Addr b = alloc.alloc(32, Placement::sequential);
    EXPECT_EQ(b, a + 32);
}

TEST(SimAllocator, CustomAlignment)
{
    Machine m;
    SimAllocator alloc(m);
    alloc.alloc(8);
    const Addr a = alloc.alloc(64, Placement::sequential, 256);
    EXPECT_EQ(a % 256, 0u);
}

TEST(SimAllocator, StatsTrackLifecycle)
{
    Machine m;
    SimAllocator alloc(m);
    const Addr a = alloc.alloc(100); // rounds to 104
    EXPECT_EQ(alloc.bytesLive(), 104u);
    EXPECT_EQ(alloc.bytesTotal(), 104u);
    alloc.free(a);
    EXPECT_EQ(alloc.bytesLive(), 0u);
    EXPECT_EQ(alloc.bytesPeak(), 104u);
    EXPECT_EQ(alloc.allocCalls(), 1u);
    EXPECT_EQ(alloc.freeCalls(), 1u);
}

TEST(SimAllocator, DeterministicAcrossRunsWithSameSeed)
{
    Machine m1, m2;
    SimAllocator a1(m1, 77), a2(m2, 77);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a1.alloc(24, Placement::scattered),
                  a2.alloc(24, Placement::scattered));
    }
}

TEST(SimAllocator, ChainAwareFreeReclaimsRelocatedCopies)
{
    // Section 3.3: freeing an object whose words forward must free the
    // relocated copies too.
    Machine m;
    SimAllocator alloc(m);
    const Addr obj = alloc.alloc(32);
    const Addr copy = alloc.alloc(32);
    relocate(m, obj, copy, 4);
    EXPECT_TRUE(alloc.isAllocated(copy));
    alloc.free(obj);
    EXPECT_FALSE(alloc.isAllocated(obj));
    EXPECT_FALSE(alloc.isAllocated(copy));
    EXPECT_EQ(alloc.bytesLive(), 0u);
}

TEST(SimAllocator, ChainAwareFreeSkipsUnknownTargets)
{
    Machine m;
    SimAllocator alloc(m);
    const Addr obj = alloc.alloc(16);
    // Forward into pool-like space the allocator does not track.
    m.access(Access::unforwardedWrite(obj, 0x7f0000000ull, true));
    alloc.free(obj); // must not crash
    EXPECT_FALSE(alloc.isAllocated(obj));
}

TEST(SimAllocatorDeathTest, DoubleFreePanics)
{
    Machine m;
    SimAllocator alloc(m);
    const Addr a = alloc.alloc(16);
    alloc.free(a);
    EXPECT_DEATH(alloc.free(a), "unallocated");
}

TEST(SimAllocatorDeathTest, ZeroBytesPanics)
{
    Machine m;
    SimAllocator alloc(m);
    EXPECT_DEATH(alloc.alloc(0), "zero-byte");
}

TEST(RelocationPool, BumpAllocatesContiguously)
{
    Machine m;
    SimAllocator alloc(m);
    RelocationPool pool(alloc, 4096);
    const Addr a = pool.take(24);
    const Addr b = pool.take(24);
    EXPECT_EQ(b, a + 24);
    EXPECT_EQ(pool.used(), 48u);
    EXPECT_EQ(pool.remaining(), 4096u - 48);
}

TEST(RelocationPool, AlignedTake)
{
    Machine m;
    SimAllocator alloc(m);
    RelocationPool pool(alloc, 4096);
    pool.take(8);
    const Addr a = pool.take(64, 128);
    EXPECT_EQ(a % 128, 0u);
}

TEST(RelocationPoolDeathTest, ExhaustionPanics)
{
    Machine m;
    SimAllocator alloc(m);
    RelocationPool pool(alloc, 64);
    pool.take(64);
    EXPECT_DEATH(pool.take(8), "exhausted");
}

} // namespace
} // namespace memfwd
