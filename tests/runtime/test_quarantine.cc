/** @file Unit tests for the quarantining allocator + metadata plane. */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/gate.hh"
#include "common/stats_registry.hh"
#include "core/traps.hh"
#include "mem/metadata_plane.hh"
#include "mem/tagged_memory.hh"
#include "obs/trace.hh"
#include "runtime/machine.hh"
#include "runtime/quarantine_allocator.hh"
#include "runtime/ref_stream.hh"
#include "runtime/relocation.hh"
#include "runtime/sim_allocator.hh"

namespace memfwd
{
namespace
{

constexpr unsigned obj_words = 4;
constexpr Addr obj_bytes = obj_words * wordBytes;

struct Rig
{
    Machine machine;
    SimAllocator alloc;
    QuarantineAllocator qa;

    explicit Rig(const MachineConfig &cfg)
        : machine(cfg), alloc(machine, /*seed=*/7), qa(machine, alloc)
    {
    }
};

MachineConfig
quarantineConfig(Addr capacity = 1ULL << 20,
                 QuarantinePolicy policy = QuarantinePolicy::watermark)
{
    MachineConfig cfg;
    cfg.quarantine(capacity, policy);
    return cfg;
}

/** Allocate an object and fill each word with base + word index. */
Addr
fillObject(Rig &r, std::uint64_t base)
{
    const Addr a = r.qa.alloc(obj_bytes);
    for (unsigned w = 0; w < obj_words; ++w)
        r.machine.poke(a + w * wordBytes, wordBytes, base + w);
    return a;
}

TEST(QuarantineAllocator, FreeRelocatesIntoQuarantine)
{
    Rig r(quarantineConfig());
    const Addr a = fillObject(r, 0x100);
    const Addr b = fillObject(r, 0x200);
    const std::uint32_t b_id = r.qa.objectId(b);
    ASSERT_NE(b_id, 0u);
    EXPECT_NE(r.qa.objectId(a), b_id);

    r.qa.free(b);

    EXPECT_TRUE(r.qa.isQuarantined(b));
    EXPECT_EQ(r.qa.objectId(b), 0u); // no longer a live object
    EXPECT_EQ(r.qa.quarantinedFrees(), 1u);
    EXPECT_EQ(r.qa.liveBytes(), obj_bytes);
    EXPECT_EQ(r.qa.entries(), 1u);

    const Addr slot = r.qa.quarantineSlot(b);
    ASSERT_NE(slot, 0u);
    const MetadataPlane *plane = r.machine.mem().metadataPlane();
    ASSERT_NE(plane, nullptr);
    for (unsigned w = 0; w < obj_words; ++w) {
        // Freed storage forwards; the quarantine copy is tagged with
        // the dead object's id.
        EXPECT_TRUE(r.machine.mem().fbit(b + w * wordBytes));
        const MetadataPlane::Meta m = plane->get(slot + w * wordBytes);
        EXPECT_TRUE(MetadataPlane::isQuarantined(m));
        EXPECT_EQ(MetadataPlane::objectId(m), b_id);
        EXPECT_EQ(MetadataPlane::boundsClass(m),
                  MetadataPlane::boundsClassFor(obj_bytes));
    }
}

TEST(QuarantineAllocator, UafClassifiedByMatchingProvenance)
{
    Rig r(quarantineConfig());
    fillObject(r, 0x100);
    const Addr b = fillObject(r, 0x200);
    const std::uint32_t b_id = r.qa.objectId(b);
    r.qa.free(b);

    std::vector<TrapInfo> traps;
    r.machine.forwarding().traps().install([&](const TrapInfo &info) {
        traps.push_back(info);
        return TrapAction::resume;
    });

    const AccessResult res = r.machine.access(
        Access::load(b + wordBytes, wordBytes).objectId(b_id));

    // Detection is non-destructive: forwarding still resolves the
    // dangling reference to the moved value.
    EXPECT_EQ(res.value, 0x201u);
    EXPECT_TRUE(res.trapped);
    EXPECT_EQ(r.machine.forwarding().stats().temporal_uaf, 1u);
    EXPECT_EQ(r.machine.forwarding().stats().temporal_oob, 0u);

    // Both the forwarding trap and the classified violation fire.
    ASSERT_FALSE(traps.empty());
    const TrapInfo &violation = traps.back();
    EXPECT_EQ(violation.kind, TrapKind::TemporalViolation);
    EXPECT_EQ(violation.initial_addr, b + wordBytes);
    EXPECT_EQ(violation.final_addr,
              r.qa.quarantineSlot(b) + wordBytes);
}

TEST(QuarantineAllocator, OobClassifiedOnForeignOrUnknownProvenance)
{
    Rig r(quarantineConfig());
    const Addr a = fillObject(r, 0x100);
    const Addr b = fillObject(r, 0x200);
    ASSERT_EQ(a + obj_bytes, b) << "sequential placement must adjoin";
    const std::uint32_t a_id = r.qa.objectId(a);
    r.qa.free(b);

    // Overrun from A lands in B's freed slot: foreign id -> OOB.
    r.machine.access(
        Access::load(a + obj_bytes, wordBytes).objectId(a_id));
    EXPECT_EQ(r.machine.forwarding().stats().temporal_oob, 1u);

    // Unknown provenance (id 0) is also OOB, never UAF.
    r.machine.access(Access::load(b, wordBytes));
    EXPECT_EQ(r.machine.forwarding().stats().temporal_oob, 2u);
    EXPECT_EQ(r.machine.forwarding().stats().temporal_uaf, 0u);

    // In-bounds accesses to the live neighbour stay silent.
    r.machine.access(Access::load(a, wordBytes).objectId(a_id));
    EXPECT_EQ(r.machine.forwarding().stats().temporal_oob, 2u);
}

TEST(QuarantineAllocator, OrdinaryRelocationTrapsStayForwardingKind)
{
    Rig r(quarantineConfig());
    const Addr a = fillObject(r, 0x100);
    const Addr tgt = r.alloc.alloc(obj_bytes);

    std::vector<TrapKind> kinds;
    r.machine.forwarding().traps().install([&](const TrapInfo &info) {
        kinds.push_back(info.kind);
        return TrapAction::resume;
    });

    relocate(r.machine, a, tgt, obj_words);
    r.machine.access(Access::load(a, wordBytes));
    ASSERT_FALSE(kinds.empty());
    for (const TrapKind k : kinds)
        EXPECT_EQ(k, TrapKind::Forwarding);
    EXPECT_EQ(r.machine.forwarding().stats().temporal_uaf, 0u);
    EXPECT_EQ(r.machine.forwarding().stats().temporal_oob, 0u);
}

TEST(QuarantineAllocator, FtcInvalidatedPreciselyOnQuarantine)
{
    MachineConfig cfg = quarantineConfig();
    cfg.forwarding.ftc_enabled = true;
    cfg.forwarding.ftc_sets = 64;
    cfg.forwarding.ftc_ways = 4;
    Rig r(cfg);
    fillObject(r, 0x100);
    const Addr b = fillObject(r, 0x200);
    const std::uint32_t b_id = r.qa.objectId(b);

    // Relocate B while live, then warm the FTC on its chain.
    const Addr mid = r.alloc.alloc(obj_bytes);
    relocate(r.machine, b, mid, obj_words);
    r.machine.access(Access::load(b, wordBytes));
    r.machine.access(Access::load(b, wordBytes));
    ASSERT_EQ(r.machine.forwarding().ftcPeek(b), mid);

    // Quarantining appends to the chain tail; the FTC entry for the
    // chain must be invalidated precisely, so the very next dangling
    // access walks to the quarantine slot and is classified.
    r.qa.free(b);
    const AccessResult res =
        r.machine.access(Access::load(b, wordBytes).objectId(b_id));
    EXPECT_EQ(res.value, 0x200u);
    EXPECT_EQ(r.machine.forwarding().stats().temporal_uaf, 1u);
    EXPECT_EQ(r.machine.forwarding().ftcPeek(b),
              r.qa.quarantineSlot(b));
}

TEST(QuarantineAllocator, WatermarkReclaimsAheadOfNeed)
{
    // Capacity of four objects, watermark 0.5: the arena steady-states
    // at two quarantined objects, reclaiming oldest-first.
    MachineConfig cfg = quarantineConfig(4 * obj_bytes);
    cfg.quarantine_cfg.watermark = 0.5;
    Rig r(cfg);

    std::vector<Addr> objs;
    for (int i = 0; i < 6; ++i)
        objs.push_back(fillObject(r, 0x100 * (i + 1)));
    for (const Addr o : objs)
        r.qa.free(o);

    EXPECT_EQ(r.qa.quarantinedFrees(), 6u);
    EXPECT_EQ(r.qa.degradedFrees(), 0u);
    EXPECT_GE(r.qa.reclaims(), 4u);
    EXPECT_LE(r.qa.liveBytes(), 2 * obj_bytes);
    EXPECT_LE(r.qa.entries(), 2u);

    // Oldest entries were reclaimed: storage really freed, metadata
    // cleared, so a stale access no longer reports a violation
    // (coverage ends when the quarantine recycles — by design).
    EXPECT_FALSE(r.qa.isQuarantined(objs[0]));
    EXPECT_FALSE(r.alloc.isAllocated(objs[0]));
    // Newest entries are still covered.
    EXPECT_TRUE(r.qa.isQuarantined(objs.back()));
}

TEST(QuarantineAllocator, OnFullPolicyRetriesWithBackoffThenReclaims)
{
    MachineConfig cfg =
        quarantineConfig(4 * obj_bytes, QuarantinePolicy::on_full);
    Rig r(cfg);

    std::vector<Addr> objs;
    for (int i = 0; i < 5; ++i)
        objs.push_back(fillObject(r, 0x100 * (i + 1)));

    for (int i = 0; i < 4; ++i)
        r.qa.free(objs[i]);
    // on_full never reclaims ahead of need.
    EXPECT_EQ(r.qa.reclaims(), 0u);
    EXPECT_EQ(r.qa.liveBytes(), 4 * obj_bytes);

    // The fifth free finds the arena full: backoff is charged as
    // compute cycles, one entry is reclaimed, and the free succeeds.
    const Cycles before = r.machine.cycles();
    r.qa.free(objs[4]);
    EXPECT_GT(r.machine.cycles(), before);
    EXPECT_GE(r.qa.retries(), 1u);
    EXPECT_GE(r.qa.reclaims(), 1u);
    EXPECT_EQ(r.qa.quarantinedFrees(), 5u);
    EXPECT_EQ(r.qa.degradedFrees(), 0u);
    EXPECT_TRUE(r.qa.isQuarantined(objs[4]));
}

TEST(QuarantineAllocator, ExhaustionDegradesGracefullyNeverAborts)
{
    // Capacity smaller than a single object: every free must degrade
    // to a plain free — counted, functional, no throw.
    Rig r(quarantineConfig(obj_bytes / 2));
    const Addr a = fillObject(r, 0x100);
    const Addr b = fillObject(r, 0x200);

    ASSERT_NO_THROW(r.qa.free(b));
    EXPECT_EQ(r.qa.degradedFrees(), 1u);
    EXPECT_EQ(r.qa.quarantinedFrees(), 0u);
    EXPECT_GE(r.qa.retries(), 1u);
    EXPECT_FALSE(r.qa.isQuarantined(b));
    EXPECT_FALSE(r.alloc.isAllocated(b));

    // The machine is fully functional afterwards.
    ASSERT_NO_THROW(r.qa.free(a));
    EXPECT_EQ(r.qa.degradedFrees(), 2u);
    const Addr c = fillObject(r, 0x300);
    EXPECT_EQ(r.machine.peek(c, wordBytes), 0x300u);
}

TEST(QuarantineAllocator, DoubleFreeCountedAndIgnored)
{
    Rig r(quarantineConfig());
    const Addr b = fillObject(r, 0x200);
    r.qa.free(b);
    ASSERT_NO_THROW(r.qa.free(b));
    EXPECT_EQ(r.qa.doubleFrees(), 1u);
    EXPECT_EQ(r.qa.quarantinedFrees(), 1u);
    EXPECT_TRUE(r.qa.isQuarantined(b));
}

TEST(QuarantineAllocator, ReclaimAllReleasesEverything)
{
    Rig r(quarantineConfig());
    std::vector<Addr> objs;
    for (int i = 0; i < 4; ++i)
        objs.push_back(fillObject(r, 0x100 * (i + 1)));
    for (const Addr o : objs)
        r.qa.free(o);
    ASSERT_EQ(r.qa.entries(), 4u);

    r.qa.reclaimAll();
    EXPECT_EQ(r.qa.entries(), 0u);
    EXPECT_EQ(r.qa.liveBytes(), 0u);
    EXPECT_EQ(r.qa.reclaims(), 4u);
    EXPECT_EQ(r.machine.mem().metadataPlane()->taggedWords(), 0u);
    for (const Addr o : objs)
        EXPECT_FALSE(r.alloc.isAllocated(o));
}

TEST(QuarantineAllocator, DisabledConfigPassesStraightThrough)
{
    MachineConfig cfg; // no plane, no quarantine
    Rig r(cfg);
    const Addr b = fillObject(r, 0x200);
    r.qa.free(b);
    EXPECT_FALSE(r.alloc.isAllocated(b));
    EXPECT_EQ(r.qa.quarantinedFrees(), 0u);
    EXPECT_EQ(r.qa.degradedFrees(), 0u);
    EXPECT_EQ(r.qa.entries(), 0u);
}

TEST(QuarantineAllocator, MetricsExported)
{
    Rig r(quarantineConfig());
    fillObject(r, 0x100);
    const Addr b = fillObject(r, 0x200);
    const std::uint32_t b_id = r.qa.objectId(b);
    r.qa.free(b);
    r.machine.access(Access::load(b, wordBytes).objectId(b_id)); // uaf
    r.machine.access(Access::load(b, wordBytes));                // oob

    StatsRegistry reg;
    r.machine.metrics().flatten(reg);
    EXPECT_EQ(reg.get("quarantine.violations_uaf"), 1u);
    EXPECT_EQ(reg.get("quarantine.violations_oob"), 1u);
    EXPECT_EQ(reg.get("quarantine.live_bytes"), obj_bytes);
    EXPECT_EQ(reg.get("quarantine.quarantined_frees"), 1u);
    EXPECT_EQ(reg.get("quarantine.reclaims"), 0u);
    EXPECT_EQ(reg.get("quarantine.degraded_frees"), 0u);
}

TEST(QuarantineAllocator, TemporalViolationTraceEventEmitted)
{
    Rig r(quarantineConfig());
    const Addr a = fillObject(r, 0x100);
    const Addr b = fillObject(r, 0x200);
    const std::uint32_t a_id = r.qa.objectId(a);
    const std::uint32_t b_id = r.qa.objectId(b);
    r.qa.free(b);

    obs::RingBufferSink sink;
    r.machine.tracer().addSink(&sink);
    r.machine.access(Access::load(b, wordBytes).objectId(b_id));
    r.machine.access(
        Access::load(a + obj_bytes, wordBytes).objectId(a_id));
    r.machine.tracer().removeSink(&sink);

    std::vector<obs::TraceEvent> violations;
    for (const obs::TraceEvent &e : sink.events()) {
        if (e.kind == obs::EventKind::temporal_violation)
            violations.push_back(e);
    }
    ASSERT_EQ(violations.size(), 2u);
    EXPECT_EQ(violations[0].addr, b);
    EXPECT_EQ(violations[0].addr2, r.qa.quarantineSlot(b));
    EXPECT_EQ(violations[0].arg, 1u); // uaf
    EXPECT_EQ(violations[1].arg, 0u); // oob
}

TEST(QuarantineAllocator, AnalysisGateAcceptsQuarantineMicroPlans)
{
    Rig r(quarantineConfig());
    AnalysisGate gate(AnalyzeMode::enforce);
    r.machine.setAnalysisGate(&gate);
    const Addr b = fillObject(r, 0x200);
    ASSERT_NO_THROW(r.qa.free(b));
    EXPECT_TRUE(r.qa.isQuarantined(b));
    EXPECT_GE(gate.stats().plans_submitted, 1u);
    r.machine.setAnalysisGate(nullptr);
}

/** Replays a recorded access list through Machine::run(RefStream&). */
class ReplayStream : public RefStream
{
  public:
    explicit ReplayStream(const std::vector<Access> &accs) : accs_(accs) {}

    bool
    fill(AccessBatch &batch) override
    {
        const std::size_t before = batch.size();
        while (next_ < accs_.size() && !batch.full())
            batch.push(accs_[next_++]);
        return batch.size() != before;
    }

  private:
    const std::vector<Access> &accs_;
    std::size_t next_ = 0;
};

/**
 * PR6-style batch invariance, now with the metadata plane and a
 * populated quarantine: the same probe sequence must produce identical
 * cycles and violation counts per-call and at every batch capacity.
 */
TEST(QuarantineAllocator, BatchInvarianceWithPlaneAndQuarantine)
{
    constexpr int n_pairs = 8;

    struct Outcome
    {
        Cycles cycles;
        std::uint64_t uaf, oob;
        bool operator==(const Outcome &) const = default;
    };

    auto runScenario = [&](std::size_t batch_cap) -> Outcome {
        Rig r(quarantineConfig());
        std::vector<Access> probes;
        std::vector<std::pair<Addr, Addr>> pairs;
        for (int i = 0; i < n_pairs; ++i) {
            const Addr a = fillObject(r, 0x100 * (i + 1));
            const Addr b = fillObject(r, 0x1000 * (i + 1));
            pairs.emplace_back(a, b);
        }
        for (auto &[a, b] : pairs) {
            const std::uint32_t a_id = r.qa.objectId(a);
            const std::uint32_t b_id = r.qa.objectId(b);
            r.qa.free(b);
            probes.push_back(
                Access::load(b, wordBytes).objectId(b_id)); // uaf
            probes.push_back(Access::load(a + obj_bytes, wordBytes)
                                 .objectId(a_id)); // oob
            probes.push_back(
                Access::load(a, wordBytes).objectId(a_id)); // legal
        }

        if (batch_cap == 0) {
            for (const Access &acc : probes) {
                Access copy = acc;
                r.machine.access(copy);
            }
        } else {
            ReplayStream stream(probes);
            AccessBatch batch(batch_cap);
            while (true) {
                batch.clear();
                if (!stream.fill(batch))
                    break;
                r.machine.run(batch);
            }
        }
        const auto &fs = r.machine.forwarding().stats();
        return {r.machine.cycles(), fs.temporal_uaf, fs.temporal_oob};
    };

    const Outcome per_call = runScenario(0);
    EXPECT_EQ(per_call.uaf, n_pairs);
    EXPECT_EQ(per_call.oob, n_pairs);
    for (const std::size_t cap : {std::size_t(1), std::size_t(3),
                                  std::size_t(7), std::size_t(256)}) {
        const Outcome batched = runScenario(cap);
        EXPECT_EQ(batched, per_call) << "capacity " << cap;
    }
}

} // namespace
} // namespace memfwd
