/** @file Unit tests for ListLinearize() (Figure 4(b), Figure 2). */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "runtime/list_linearize.hh"
#include "runtime/layout_backend.hh"
#include "runtime/machine.hh"
#include "runtime/sim_allocator.hh"

namespace memfwd
{
namespace
{

// Node: next at 0, payload at 8 (16 bytes).
constexpr ListDesc desc{16, 0, 0};

struct ListRig
{
    Machine m;
    SimAllocator alloc{m};
    RelocationPool pool{alloc, 1 << 20};
    ForwardingBackend fwd{m};
    Addr head = 0;

    ListRig() { head = alloc.alloc(wordBytes); }

    /** Build a list of n scattered nodes with payloads 0..n-1, in order. */
    void
    build(unsigned n)
    {
        m.access(Access::store(head, 8, 0));
        Addr prev = 0;
        for (unsigned i = 0; i < n; ++i) {
            const Addr node = alloc.alloc(16, Placement::scattered);
            m.access(Access::store(node + 0, 8, 0));
            m.access(Access::store(node + 8, 8, i));
            if (prev == 0)
                m.access(Access::store(head, 8, node));
            else
                m.access(Access::store(prev + 0, 8, node));
            prev = node;
        }
    }

    /** Read payloads by traversal. */
    std::vector<std::uint64_t>
    payloads()
    {
        std::vector<std::uint64_t> out;
        AccessResult cur = m.access(Access::load(head, 8));
        while (cur.value != 0) {
            out.push_back(m.access(Access::load(cur.value + 8, 8)).value);
            cur = m.access(Access::load(cur.value + 0, 8));
        }
        return out;
    }
};

TEST(ListLinearize, EmptyList)
{
    ListRig rig;
    rig.m.access(Access::store(rig.head, 8, 0));
    const LinearizeResult r =
        listLinearize(rig.fwd, rig.head, desc, rig.pool);
    EXPECT_EQ(r.nodes, 0u);
    EXPECT_EQ(r.new_head, 0u);
    EXPECT_EQ(r.pool_bytes, 0u);
}

TEST(ListLinearize, PreservesOrderAndContents)
{
    ListRig rig;
    rig.build(20);
    const auto before = rig.payloads();
    const LinearizeResult r =
        listLinearize(rig.fwd, rig.head, desc, rig.pool);
    EXPECT_EQ(r.nodes, 20u);
    EXPECT_EQ(rig.payloads(), before);
}

TEST(ListLinearize, NodesBecomeContiguousInListOrder)
{
    ListRig rig;
    rig.build(10);
    const LinearizeResult r =
        listLinearize(rig.fwd, rig.head, desc, rig.pool);
    // Walk the new list: node i must be at new_head + 16*i.
    AccessResult cur = rig.m.access(Access::load(rig.head, 8));
    for (unsigned i = 0; i < 10; ++i) {
        EXPECT_EQ(cur.value, r.new_head + Addr(i) * 16);
        cur = rig.m.access(Access::load(cur.value + 0, 8));
    }
    EXPECT_EQ(cur.value, 0u);
}

TEST(ListLinearize, HeadHandleUpdated)
{
    // Figure 4(b): the head is passed by handle so the caller's pointer
    // is updated in place.
    ListRig rig;
    rig.build(5);
    const Addr old_first =
        static_cast<Addr>(rig.m.access(Access::load(rig.head, 8)).value);
    const LinearizeResult r =
        listLinearize(rig.fwd, rig.head, desc, rig.pool);
    EXPECT_NE(rig.m.access(Access::load(rig.head, 8)).value, old_first);
    EXPECT_EQ(rig.m.access(Access::load(rig.head, 8)).value, r.new_head);
}

TEST(ListLinearize, StalePointersStillWork)
{
    ListRig rig;
    rig.build(8);
    // Keep a stale pointer to the third node.
    AccessResult cur = rig.m.access(Access::load(rig.head, 8));
    cur = rig.m.access(Access::load(cur.value + 0, 8));
    const Addr stale = static_cast<Addr>(
        rig.m.access(Access::load(cur.value + 0, 8)).value);
    const std::uint64_t want = rig.m.access(Access::load(stale + 8, 8)).value;

    listLinearize(rig.fwd, rig.head, desc, rig.pool);

    const AccessResult via_stale = rig.m.access(Access::load(stale + 8, 8));
    EXPECT_EQ(via_stale.value, want);
    EXPECT_EQ(via_stale.hops, 1u);
}

TEST(ListLinearize, TraversalsAfterwardsDoNotForward)
{
    ListRig rig;
    rig.build(12);
    listLinearize(rig.fwd, rig.head, desc, rig.pool);
    const std::uint64_t walks_before = rig.m.forwarding().stats().walks;
    rig.payloads();
    EXPECT_EQ(rig.m.forwarding().stats().walks, walks_before);
}

TEST(ListLinearize, RepeatedLinearizationChainsFromOldNodes)
{
    ListRig rig;
    rig.build(4);
    // Remember original first node.
    const Addr orig =
        static_cast<Addr>(rig.m.access(Access::load(rig.head, 8)).value);
    listLinearize(rig.fwd, rig.head, desc, rig.pool);
    listLinearize(rig.fwd, rig.head, desc, rig.pool);
    // The original node now takes two hops; traversal takes none.
    EXPECT_EQ(rig.m.access(Access::load(orig + 8, 8)).hops, 2u);
    EXPECT_EQ(rig.m.access(Access::load(rig.head, 8)).hops, 0u);
}

TEST(ListLinearize, SpatialLocalityActuallyImproves)
{
    // The paper's Figure 2 claim: 4 scattered nodes -> 2 lines instead
    // of 4 (with 32B lines and 16B nodes).
    ListRig rig;
    rig.build(64);
    const unsigned line = rig.m.config().hierarchy.l1d.line_bytes;

    auto linesTouched = [&] {
        std::set<Addr> lines;
        AccessResult cur = rig.m.access(Access::load(rig.head, 8));
        while (cur.value != 0) {
            lines.insert(static_cast<Addr>(cur.value) / line);
            cur = rig.m.access(Access::load(cur.value + 0, 8));
        }
        return lines.size();
    };

    const std::size_t before = linesTouched();
    listLinearize(rig.fwd, rig.head, desc, rig.pool);
    const std::size_t after = linesTouched();
    EXPECT_GE(before, 60u); // scattered: nearly every node its own line
    EXPECT_EQ(after, 64u * 16 / line); // packed (chunk is pool-aligned)
}

TEST(ListLinearize, ExternalTailPreserved)
{
    // A list whose last next pointer is a sentinel other than 0.
    ListRig rig;
    ListDesc d{16, 0, /*list_end=*/0xdeadb000};
    const Addr a = rig.alloc.alloc(16);
    rig.m.access(Access::store(rig.head, 8, a));
    rig.m.access(Access::store(a + 0, 8, 0xdeadb000));
    rig.m.access(Access::store(a + 8, 8, 5));
    const LinearizeResult r = listLinearize(rig.fwd, rig.head, d, rig.pool);
    EXPECT_EQ(r.nodes, 1u);
    EXPECT_EQ(rig.m.access(Access::load(r.new_head + 0, 8)).value, 0xdeadb000u);
}

TEST(ListLinearize, SharedTailBetweenTwoLists)
{
    // The scenario that makes linearization unsafe without forwarding:
    // two lists converge into a shared suffix.  Linearizing list A
    // relocates the shared nodes; list B's next pointer into the
    // suffix is now stale — and must keep working.
    ListRig rig;
    // Shared suffix of 4 nodes (payloads 100..103).
    Addr suffix_head = 0;
    Addr prev = 0;
    for (unsigned i = 0; i < 4; ++i) {
        const Addr n = rig.alloc.alloc(16, Placement::scattered);
        rig.m.access(Access::store(n + 0, 8, 0));
        rig.m.access(Access::store(n + 8, 8, 100 + i));
        if (prev == 0)
            suffix_head = n;
        else
            rig.m.access(Access::store(prev + 0, 8, n));
        prev = n;
    }
    // List A: head -> a0 -> suffix.
    const Addr a0 = rig.alloc.alloc(16, Placement::scattered);
    rig.m.access(Access::store(a0 + 0, 8, suffix_head));
    rig.m.access(Access::store(a0 + 8, 8, 1));
    rig.m.access(Access::store(rig.head, 8, a0));
    // List B: head_b -> b0 -> suffix (same suffix!).
    const Addr head_b = rig.alloc.alloc(8);
    const Addr b0 = rig.alloc.alloc(16, Placement::scattered);
    rig.m.access(Access::store(b0 + 0, 8, suffix_head));
    rig.m.access(Access::store(b0 + 8, 8, 2));
    rig.m.access(Access::store(head_b, 8, b0));

    auto walk = [&](Addr h) {
        std::vector<std::uint64_t> out;
        AccessResult cur = rig.m.access(Access::load(h, 8));
        while (cur.value != 0) {
            out.push_back(rig.m.access(Access::load(cur.value + 8, 8)).value);
            cur = rig.m.access(Access::load(cur.value + 0, 8));
        }
        return out;
    };
    const std::vector<std::uint64_t> want_a{1, 100, 101, 102, 103};
    const std::vector<std::uint64_t> want_b{2, 100, 101, 102, 103};
    ASSERT_EQ(walk(rig.head), want_a);
    ASSERT_EQ(walk(head_b), want_b);

    // Linearize A: the suffix relocates; B's pointer goes stale.
    listLinearize(rig.fwd, rig.head, desc, rig.pool);
    EXPECT_EQ(walk(rig.head), want_a);
    const std::uint64_t walks_before =
        rig.m.forwarding().stats().walks;
    EXPECT_EQ(walk(head_b), want_b); // forwarding saves B
    EXPECT_GT(rig.m.forwarding().stats().walks, walks_before);

    // Linearize B too: the already-moved suffix nodes get a second
    // chain hop appended; both lists still read correctly.
    listLinearize(rig.fwd, head_b, desc, rig.pool);
    EXPECT_EQ(walk(rig.head), want_a);
    EXPECT_EQ(walk(head_b), want_b);
}

TEST(ListLinearizeDeathTest, RunawayListCaught)
{
    ListRig rig;
    // A self-looping list (corrupt): node->next == node.
    const Addr a = rig.alloc.alloc(16);
    rig.m.access(Access::store(rig.head, 8, a));
    rig.m.access(Access::store(a + 0, 8, a));
    EXPECT_DEATH(listLinearize(rig.fwd, rig.head, desc, rig.pool, 100),
                 "max_nodes");
}

} // namespace
} // namespace memfwd
