/** @file Unit tests for the typed accessor layer. */

#include <gtest/gtest.h>

#include "runtime/relocation.hh"
#include "runtime/sim_allocator.hh"
#include "runtime/sim_struct.hh"

namespace memfwd
{
namespace
{

struct Node
{
    static constexpr Field<Addr> next{0};
    static constexpr Field<std::uint32_t> key{8};
    static constexpr Field<std::uint16_t> flags{12};
    static constexpr Field<std::uint8_t> tag{14};
    static constexpr unsigned bytes = 16;
};

TEST(SimStruct, TypedRoundTrip)
{
    Machine m;
    ObjRef n(m, 0x1000);
    n.store(Node::key, 0xdeadbeefu);
    n.store(Node::flags, std::uint16_t(0x1234));
    n.store(Node::tag, std::uint8_t(0x7f));
    EXPECT_EQ(n.load(Node::key), 0xdeadbeefu);
    EXPECT_EQ(n.load(Node::flags), 0x1234u);
    EXPECT_EQ(n.load(Node::tag), 0x7fu);
}

TEST(SimStruct, NullTest)
{
    Machine m;
    EXPECT_FALSE(ObjRef(m, 0));
    EXPECT_TRUE(ObjRef(m, 0x1000));
    EXPECT_FALSE(ObjRef());
}

TEST(SimStruct, FollowThreadsDependence)
{
    Machine m;
    ObjRef a(m, 0x1000);
    a.store(Node::next, Addr(0x2000));
    const ObjRef b = a.follow(Node::next);
    EXPECT_EQ(b.addr(), 0x2000u);
    EXPECT_GT(b.ready(), a.ready());
}

TEST(SimStruct, TraversalMatchesRawApi)
{
    // The typed walk and the raw walk must see identical values and
    // comparable timing.
    Machine m1, m2;
    SimAllocator a1(m1, 5), a2(m2, 5);

    auto build = [](Machine &m, SimAllocator &alloc) {
        Addr head = 0;
        for (unsigned i = 0; i < 50; ++i) {
            const Addr n =
                alloc.alloc(Node::bytes, Placement::scattered);
            m.poke(n + Node::next.offset, 8, head);
            m.poke(n + Node::key.offset, 4, i * 3);
            head = n;
        }
        return head;
    };
    const Addr h1 = build(m1, a1);
    const Addr h2 = build(m2, a2);
    ASSERT_EQ(h1, h2); // same seed, same layout

    // Typed walk.
    std::uint64_t typed_sum = 0;
    for (ObjRef n(m1, h1); n; n = n.follow(Node::next))
        typed_sum += n.load(Node::key);

    // Raw walk.
    std::uint64_t raw_sum = 0;
    AccessResult cur{h2, 0, 0, h2};
    while (cur.value != 0) {
        raw_sum +=
            m2.access(Access::load(cur.value + Node::key.offset, 4, cur.ready)).value;
        cur = m2.access(Access::load(cur.value + Node::next.offset, 8, cur.ready));
    }

    EXPECT_EQ(typed_sum, raw_sum);
    EXPECT_EQ(m1.cycles(), m2.cycles());
    EXPECT_EQ(m1.loads(), m2.loads());
}

TEST(SimStruct, ForwardingTransparent)
{
    Machine m;
    ObjRef n(m, 0x1000);
    n.store(Node::key, 77u);
    relocate(m, 0x1000, 0x9000, Node::bytes / wordBytes);
    // The stale typed reference still reads/writes correctly.
    EXPECT_EQ(n.load(Node::key), 77u);
    n.store(Node::key, 88u);
    EXPECT_EQ(m.peek(0x9000 + Node::key.offset, 4), 88u);
}

TEST(SimStruct, OffsetByKeepsReadiness)
{
    Machine m;
    ObjRef a(m, 0x1000, 500);
    const ObjRef b = a.offsetBy(32);
    EXPECT_EQ(b.addr(), 0x1020u);
    EXPECT_EQ(b.ready(), 500u);
}

TEST(SimStruct, PrefetchIsNonBinding)
{
    Machine m;
    ObjRef n(m, 0x4000);
    n.prefetch(2);
    EXPECT_TRUE(m.hierarchy().l1d().contains(0x4000));
}

} // namespace
} // namespace memfwd
