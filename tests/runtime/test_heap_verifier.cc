/** @file Unit tests for the offline heap-integrity auditor. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats_registry.hh"
#include "core/fault_injector.hh"
#include "runtime/compacting_heap.hh"
#include "runtime/heap_verifier.hh"
#include "runtime/quarantine_allocator.hh"
#include "runtime/machine.hh"
#include "runtime/relocation.hh"
#include "runtime/sim_allocator.hh"
#include "workloads/driver.hh"

namespace memfwd
{
namespace
{

TEST(HeapVerifier, EmptyHeapIsClean)
{
    TaggedMemory mem;
    const AuditReport r = HeapVerifier(mem).audit();
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.pages_scanned, 0u);
    EXPECT_EQ(r.fbits_set, 0u);
    EXPECT_TRUE(r.chains.empty());
}

TEST(HeapVerifier, CountsChainsFromHeads)
{
    Machine m;
    // Two chains: 0x1000 -> 0x2000 -> 0x3000, and 0x8000 -> 0x9000.
    m.access(Access::store(0x1000, 8, 1));
    m.access(Access::store(0x8000, 8, 2));
    relocate(m, 0x1000, 0x2000, 1);
    relocate(m, 0x1000, 0x3000, 1);
    relocate(m, 0x8000, 0x9000, 1);

    const AuditReport r = HeapVerifier(m.mem()).audit();
    EXPECT_TRUE(r.clean());
    ASSERT_EQ(r.chains.size(), 2u);
    EXPECT_EQ(r.fbits_set, 3u);
    EXPECT_EQ(r.max_chain_length, 2u);
    EXPECT_EQ(r.total_hops, 3u);
    // Heads are reported sorted; mid-chain words are not heads.
    EXPECT_EQ(r.chains[0].head, 0x1000u);
    EXPECT_EQ(r.chains[0].length, 2u);
    EXPECT_EQ(r.chains[0].final_addr, 0x3000u);
    EXPECT_EQ(r.chains[1].head, 0x8000u);
    EXPECT_EQ(r.chains[1].length, 1u);
}

TEST(HeapVerifier, DetectsCyclicChain)
{
    TaggedMemory mem;
    // Head 0x1000 leads into the loop 0x2000 <-> 0x3000.
    mem.unforwardedWrite(0x1000, 0x2000, true);
    mem.unforwardedWrite(0x2000, 0x3000, true);
    mem.unforwardedWrite(0x3000, 0x2000, true);
    const AuditReport r = HeapVerifier(mem).audit();
    EXPECT_FALSE(r.clean());
    ASSERT_EQ(r.cyclic_chains.size(), 1u);
    EXPECT_EQ(r.cyclic_chains[0], 0x1000u);
}

TEST(HeapVerifier, DetectsOrphanCycle)
{
    TaggedMemory mem;
    // A pure loop no head reaches: every member is pointed at.
    mem.unforwardedWrite(0x5000, 0x6000, true);
    mem.unforwardedWrite(0x6000, 0x5000, true);
    const AuditReport r = HeapVerifier(mem).audit();
    EXPECT_FALSE(r.clean());
    EXPECT_TRUE(r.chains.empty()); // no heads at all
    EXPECT_EQ(r.orphan_cycle_words.size(), 2u);
}

TEST(HeapVerifier, DetectsSelfLoop)
{
    TaggedMemory mem;
    mem.unforwardedWrite(0x4000, 0x4000, true);
    const AuditReport r = HeapVerifier(mem).audit();
    EXPECT_FALSE(r.clean());
    // A self-loop is its own target, so it is an orphan cycle.
    ASSERT_EQ(r.orphan_cycle_words.size(), 1u);
    EXPECT_EQ(r.orphan_cycle_words[0], 0x4000u);
}

TEST(HeapVerifier, DetectsDanglingTarget)
{
    TaggedMemory mem;
    // Target page never materialized: legitimate relocation writes the
    // target first, so this can only be corruption.
    mem.unforwardedWrite(0x1000, 0xdead0000, true);
    const AuditReport r = HeapVerifier(mem).audit();
    EXPECT_FALSE(r.clean());
    ASSERT_EQ(r.dangling_targets.size(), 1u);
    EXPECT_EQ(r.dangling_targets[0], 0x1000u);
}

TEST(HeapVerifier, DetectsMisalignedAndNullTargets)
{
    TaggedMemory mem;
    mem.rawWriteWord(0x2000, 0); // materialize the page
    mem.unforwardedWrite(0x1000, 0x2003, true); // misaligned
    mem.unforwardedWrite(0x1008, 0, true);      // null
    const AuditReport r = HeapVerifier(mem).audit();
    EXPECT_FALSE(r.clean());
    ASSERT_EQ(r.misaligned_targets.size(), 1u);
    EXPECT_EQ(r.misaligned_targets[0], 0x1000u);
    ASSERT_EQ(r.null_targets.size(), 1u);
    EXPECT_EQ(r.null_targets[0], 0x1008u);
}

TEST(HeapVerifier, DetectsEveryInjectedCorruption)
{
    // 100% detection: each injector primitive leaves a heap the audit
    // flags (except truncation, which by design leaves a *valid*
    // shorter chain — verified via the before/after report diff).
    for (const FaultKind kind :
         {FaultKind::bit_flip, FaultKind::truncate, FaultKind::cycle}) {
        Machine m;
        m.access(Access::store(0x1000, 8, 0x1233)); // odd payload: misaligned as pointer
        relocate(m, 0x1000, 0x2000, 1);
        relocate(m, 0x1000, 0x3000, 1);
        const AuditReport before = HeapVerifier(m.mem()).audit();
        ASSERT_TRUE(before.clean());

        FaultInjector inj;
        switch (kind) {
          case FaultKind::bit_flip:
            inj.injectBitFlip(m.mem(), 0x1000);
            break;
          case FaultKind::truncate:
            inj.injectTruncation(m.mem(), 0x1000, /*hop=*/1);
            break;
          case FaultKind::cycle:
            inj.injectCycle(m.mem(), 0x1000);
            break;
          case FaultKind::alloc_fail:
            break;
        }

        const AuditReport after = HeapVerifier(m.mem()).audit();
        if (kind == FaultKind::truncate) {
            // Structurally valid but different: the chain got shorter.
            EXPECT_TRUE(after.clean());
            EXPECT_LT(after.total_hops, before.total_hops);
        } else {
            EXPECT_FALSE(after.clean())
                << "undetected " << faultKindName(kind);
        }

        // And repair() must return the audit to exactly clean.
        inj.repair(m.mem());
        const AuditReport repaired = HeapVerifier(m.mem()).audit();
        EXPECT_TRUE(repaired.clean());
        EXPECT_EQ(repaired.total_hops, before.total_hops);
    }
}

TEST(HeapVerifier, CleanAfterHealthWorkload)
{
    // The acceptance bar: a real optimized workload (relocations, live
    // chains) must audit clean when no faults are injected.
    RunConfig cfg;
    cfg.workload = "health";
    cfg.params.scale = 0.2; // smallest scale whose churn triggers
                            // re-linearization (real relocations)
    cfg.variant.layout_opt = true;

    Machine machine(cfg.machine);
    auto w = makeWorkload(cfg.workload, cfg.params);
    w->run(machine, cfg.variant);

    const AuditReport r = HeapVerifier(machine.mem()).audit();
    EXPECT_TRUE(r.clean()) << "violations: " << r.inconsistencies();
    EXPECT_GT(r.fbits_set, 0u); // the optimization really relocated
    EXPECT_GT(r.chains.size(), 0u);
}

TEST(HeapVerifier, CleanAfterCompactingHeapCollections)
{
    Machine machine;
    SimAllocator alloc(machine);
    CompactingHeap heap(machine, alloc, 1 << 16);

    // A small linked structure, collected twice (space flips back).
    std::vector<Addr> objs;
    for (int i = 0; i < 16; ++i)
        objs.push_back(heap.alloc(2, /*pointer_mask=*/i > 0 ? 1 : 0));
    for (int i = 1; i < 16; ++i)
        machine.poke(CompactingHeap::field(objs[i], 0), 8, objs[i - 1]);
    const Addr root_slot = alloc.alloc(8);
    machine.poke(root_slot, 8, objs.back());

    heap.collect({root_slot});
    heap.collect({root_slot});
    EXPECT_EQ(heap.stats().collections, 2u);

    const AuditReport r = HeapVerifier(machine.mem()).audit();
    EXPECT_TRUE(r.clean()) << "violations: " << r.inconsistencies();
}

TEST(AuditReport, StatsAndDump)
{
    TaggedMemory mem;
    mem.unforwardedWrite(0x1000, 0x2000, true);
    mem.rawWriteWord(0x2000, 7);
    mem.unforwardedWrite(0x3000, 0x3000, true); // self-loop

    const AuditReport r = HeapVerifier(mem).audit();
    StatsRegistry reg;
    r.metrics().flatten(reg, "audit.");
    EXPECT_EQ(reg.get("audit.chains"), 1u);
    EXPECT_EQ(reg.get("audit.orphan_cycle_words"), 1u);
    EXPECT_EQ(reg.get("audit.inconsistencies"), 1u);

    std::ostringstream os;
    r.dump(os);
    EXPECT_NE(os.str().find("orphan"), std::string::npos);
}

TEST(HeapVerifier, QuarantinedChainsAreExpectedStateNotCorruption)
{
    MachineConfig cfg;
    cfg.quarantine(1ULL << 20);
    Machine machine(cfg);
    SimAllocator alloc(machine, /*seed=*/7);
    QuarantineAllocator qa(machine, alloc);

    constexpr unsigned obj_words = 4;
    const Addr live = alloc.alloc(obj_words * wordBytes);
    machine.poke(live, 8, 42);
    const Addr dead = qa.alloc(obj_words * wordBytes);
    for (unsigned w = 0; w < obj_words; ++w)
        machine.poke(dead + w * wordBytes, 8, 0x100 + w);
    qa.free(dead);
    ASSERT_TRUE(qa.isQuarantined(dead));

    const AuditReport r = HeapVerifier(machine.mem()).audit();
    // A quarantined chain per freed word, flagged as such, counted as
    // expected state — never as leak or corruption.
    EXPECT_TRUE(r.clean()) << "violations: " << r.inconsistencies();
    EXPECT_EQ(r.quarantined_chains.size(), obj_words);
    unsigned flagged = 0;
    for (const AuditChain &c : r.chains) {
        if (c.quarantined) {
            ++flagged;
            EXPECT_GE(c.head, dead);
            EXPECT_LT(c.head, dead + obj_words * wordBytes);
        }
    }
    EXPECT_EQ(flagged, obj_words);

    StatsRegistry reg;
    r.metrics().flatten(reg, "audit.");
    EXPECT_EQ(reg.get("audit.quarantined_chains"), obj_words);
    EXPECT_EQ(reg.get("audit.inconsistencies"), 0u);

    std::ostringstream os;
    r.dump(os);
    EXPECT_NE(os.str().find("quarantined"), std::string::npos);

    // Reclaiming drains the classification with the metadata.
    qa.reclaimAll();
    const AuditReport after = HeapVerifier(machine.mem()).audit();
    EXPECT_TRUE(after.quarantined_chains.empty());
    EXPECT_TRUE(after.clean());
}

TEST(HeapVerifier, PlaneOffChainsNeverClassifiedQuarantined)
{
    TaggedMemory mem;
    mem.unforwardedWrite(0x1000, 0x2000, true);
    mem.rawWriteWord(0x2000, 7);
    const AuditReport r = HeapVerifier(mem).audit();
    EXPECT_TRUE(r.quarantined_chains.empty());
    ASSERT_EQ(r.chains.size(), 1u);
    EXPECT_FALSE(r.chains[0].quarantined);
}

} // namespace
} // namespace memfwd
