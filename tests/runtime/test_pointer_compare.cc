/** @file Unit tests for final-address pointer comparison (Section 2.1). */

#include <gtest/gtest.h>

#include "runtime/machine.hh"
#include "runtime/pointer_compare.hh"
#include "runtime/relocation.hh"

namespace memfwd
{
namespace
{

TEST(PointerCompare, EqualInitialAddressesAreEqual)
{
    Machine m;
    EXPECT_TRUE(pointersEqual(m, 0x1000, 0x1000));
}

TEST(PointerCompare, DistinctUnrelatedPointersDiffer)
{
    Machine m;
    EXPECT_FALSE(pointersEqual(m, 0x1000, 0x2000));
    EXPECT_LT(pointerCompare(m, 0x1000, 0x2000), 0);
    EXPECT_GT(pointerCompare(m, 0x2000, 0x1000), 0);
}

TEST(PointerCompare, StaleAndFreshPointersToSameObjectCompareEqual)
{
    // The paper's exact hazard: after relocation, a stale pointer and
    // an updated pointer have different initial addresses but designate
    // the same object.
    Machine m;
    m.access(Access::store(0x1000, 8, 9));
    relocate(m, 0x1000, 0x5000, 1);
    EXPECT_TRUE(pointersEqual(m, 0x1000, 0x5000));
    EXPECT_EQ(pointerCompare(m, 0x1000, 0x5000), 0);
}

TEST(PointerCompare, OffsetsWithinWordRespected)
{
    Machine m;
    relocate(m, 0x1000, 0x5000, 1);
    EXPECT_TRUE(pointersEqual(m, 0x1004, 0x5004));
    EXPECT_FALSE(pointersEqual(m, 0x1004, 0x5002));
}

TEST(PointerCompare, BothStaleThroughDifferentChains)
{
    Machine m;
    relocate(m, 0x1000, 0x3000, 1);
    relocate(m, 0x2000, 0x3000, 1); // both old homes point to 0x3000
    EXPECT_TRUE(pointersEqual(m, 0x1000, 0x2000));
}

TEST(PointerCompare, ComparisonChargesTime)
{
    Machine m;
    relocate(m, 0x1000, 0x5000, 1);
    const Cycles before = m.cycles();
    pointersEqual(m, 0x1000, 0x5000);
    EXPECT_GT(m.cycles(), before);
}

TEST(PointerCompare, OrderingFollowsFinalAddresses)
{
    Machine m;
    // 0x9000 forwards to 0x0800: its final address is LOWER than 0x1000.
    relocate(m, 0x9000, 0x0800, 1);
    EXPECT_LT(pointerCompare(m, 0x9000, 0x1000), 0);
}

} // namespace
} // namespace memfwd
