/**
 * @file
 * Batched reference-stream API tests.
 *
 * The contract under test (runtime/ref_stream.hh): batch size never
 * changes simulated timing or architectural results.  A program driven
 * through BatchEmitter at any capacity — including 1 — must produce
 * cycle counts, forwarding statistics, trap sequences, loaded values
 * and heap state identical to the same program issued through the
 * per-call Machine::access() API.  Forwarded words and user traps are
 * deliberately placed so references resolve chains *inside* a drained
 * batch, and relocations land between batches under the documented
 * flush discipline.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.hh"
#include "core/traps.hh"
#include "runtime/machine.hh"
#include "runtime/ref_stream.hh"
#include "runtime/relocation.hh"

namespace memfwd
{
namespace
{

constexpr Addr obj_base = 0x100000;
constexpr unsigned obj_count = 24;
constexpr unsigned obj_words = 4;
constexpr Addr reloc_base = 0x800000;

Addr
objAddr(unsigned i)
{
    return obj_base + Addr(i) * 0x100;
}

/**
 * Issue surface the synthetic program runs against, so the identical
 * sequence can be driven per-call and batched at several capacities.
 */
class Ops
{
  public:
    virtual ~Ops() = default;
    virtual void store(Addr a, std::uint64_t v, SiteId s = no_site) = 0;
    virtual AccessResult load(Addr a, SiteId s = no_site) = 0;
    virtual bool readFBit(Addr a) = 0;
    virtual std::uint64_t unforwardedRead(Addr a) = 0;
    virtual void compute(std::uint64_t n) = 0;
    virtual void prefetch(Addr a, unsigned lines) = 0;
    /** Drain pending work (required before relocation, like allocs). */
    virtual void flush() {}
};

class DirectOps : public Ops
{
  public:
    explicit DirectOps(Machine &m) : m_(m) {}

    void
    store(Addr a, std::uint64_t v, SiteId s) override
    {
        m_.access(Access::store(a, wordBytes, v, 0, s));
    }
    AccessResult
    load(Addr a, SiteId s) override
    {
        return m_.access(Access::load(a, wordBytes, 0, s));
    }
    bool
    readFBit(Addr a) override
    {
        return m_.access(Access::readFBit(a)).value != 0;
    }
    std::uint64_t
    unforwardedRead(Addr a) override
    {
        return m_.access(Access::unforwardedRead(a)).value;
    }
    void compute(std::uint64_t n) override { m_.access(Access::compute(n)); }
    void
    prefetch(Addr a, unsigned lines) override
    {
        m_.access(Access::prefetch(a, lines));
    }

  private:
    Machine &m_;
};

class EmitterOps : public Ops
{
  public:
    EmitterOps(Machine &m, std::size_t cap) : em_(m, cap) {}

    void
    store(Addr a, std::uint64_t v, SiteId s) override
    {
        em_.store(a, wordBytes, v, 0, s);
    }
    AccessResult
    load(Addr a, SiteId s) override
    {
        return em_.load(a, wordBytes, 0, s);
    }
    bool readFBit(Addr a) override { return em_.readFBit(a); }
    std::uint64_t
    unforwardedRead(Addr a) override
    {
        return em_.unforwardedRead(a);
    }
    void compute(std::uint64_t n) override { em_.compute(n); }
    void
    prefetch(Addr a, unsigned lines) override
    {
        em_.prefetch(a, lines);
    }
    void flush() override { em_.flush(); }

  private:
    BatchEmitter em_;
};

/** Everything an execution strategy may not change. */
struct Outcome
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t refs = 0;
    std::uint64_t loads_forwarded = 0;
    std::uint64_t stores_forwarded = 0;
    /** (site, initial, final) per delivered trap, in order. */
    std::vector<std::uint64_t> traps;
    /** Loaded values, final addresses, fbits — the architectural log. */
    std::vector<std::uint64_t> log;
    std::uint64_t heap_sum = 0;
};

/**
 * A fixed mixed program: build objects, relocate a third of them
 * (creating chains), then hammer loads/stores/raw ops over the mix so
 * forwarded references and user traps land inside drained batches.
 */
Outcome
runProgram(Machine &m, Ops &ops)
{
    Outcome out;
    m.forwarding().traps().install([&](const TrapInfo &t) {
        out.traps.push_back(t.site);
        out.traps.push_back(t.initial_addr);
        out.traps.push_back(t.final_addr);
        return TrapAction::resume;
    });

    for (unsigned i = 0; i < obj_count; ++i)
        for (unsigned w = 0; w < obj_words; ++w)
            ops.store(objAddr(i) + w * wordBytes, i * 977 + w);

    // Relocate every third object; the forwarding words these leave
    // behind are what later batched references must chase.
    ops.flush();
    Addr bump = reloc_base;
    for (unsigned i = 0; i < obj_count; i += 3) {
        relocate(m, objAddr(i), bump, obj_words);
        bump += obj_words * wordBytes + 0x40;
    }

    Rng rng(testSeed(0x5eed));
    for (unsigned op = 0; op < 250; ++op) {
        const unsigned obj = unsigned(rng.below(obj_count));
        const Addr addr =
            objAddr(obj) + rng.below(obj_words) * wordBytes;
        const std::uint64_t pick = rng.below(100);
        if (pick < 40) {
            const AccessResult r = ops.load(addr, SiteId(op));
            out.log.push_back(r.value);
            out.log.push_back(r.final_addr);
        } else if (pick < 70) {
            ops.store(addr, rng.next(), SiteId(op));
        } else if (pick < 80) {
            out.log.push_back(ops.readFBit(addr) ? 1 : 0);
        } else if (pick < 88) {
            out.log.push_back(ops.unforwardedRead(addr));
        } else if (pick < 94) {
            ops.compute(rng.below(4) + 1);
        } else {
            ops.prefetch(addr, unsigned(rng.below(2)) + 1);
        }
    }
    ops.flush();

    for (unsigned i = 0; i < obj_count; ++i)
        for (unsigned w = 0; w < obj_words; ++w)
            out.heap_sum += m.peek(objAddr(i) + w * wordBytes, wordBytes);

    out.cycles = m.cycles();
    out.instructions = m.cpu().instructions();
    out.refs = m.refsExecuted();
    out.loads_forwarded = m.loadsForwarded();
    out.stores_forwarded = m.storesForwarded();
    return out;
}

Outcome
runPerCall(const MachineConfig &cfg)
{
    Machine m(cfg);
    DirectOps ops(m);
    return runProgram(m, ops);
}

Outcome
runBatched(const MachineConfig &cfg, std::size_t cap)
{
    Machine m(cfg);
    EmitterOps ops(m, cap);
    return runProgram(m, ops);
}

void
expectSameOutcome(const Outcome &a, const Outcome &b, const char *what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.refs, b.refs) << what;
    EXPECT_EQ(a.loads_forwarded, b.loads_forwarded) << what;
    EXPECT_EQ(a.stores_forwarded, b.stores_forwarded) << what;
    EXPECT_EQ(a.traps, b.traps) << what;
    EXPECT_EQ(a.log, b.log) << what;
    EXPECT_EQ(a.heap_sum, b.heap_sum) << what;
}

class BatchInvariance
    : public ::testing::TestWithParam<MachineConfig::Mode>
{
};

TEST_P(BatchInvariance, AnyCapacityMatchesPerCallExactly)
{
    const MachineConfig cfg = MachineConfig{}.forwardingMode(GetParam());
    const Outcome per_call = runPerCall(cfg);

    // The program must actually exercise forwarding inside batches.
    EXPECT_GT(per_call.loads_forwarded + per_call.stores_forwarded, 0u);

    for (std::size_t cap : {std::size_t(1), std::size_t(3),
                            std::size_t(7), std::size_t(256)}) {
        const Outcome batched = runBatched(cfg, cap);
        expectSameOutcome(per_call, batched,
                          ("capacity " + std::to_string(cap)).c_str());
    }
}

TEST_P(BatchInvariance, FastForwardKeepsArchitecturalLog)
{
    // Functional fast-forward drops timing but nothing else: the same
    // program yields the identical value/address/trap log and heap.
    const MachineConfig timed_cfg =
        MachineConfig{}.forwardingMode(GetParam());
    const MachineConfig ff_cfg =
        MachineConfig{}.forwardingMode(GetParam()).fastForward();

    const Outcome timed = runBatched(timed_cfg, 64);
    const Outcome ff = runBatched(ff_cfg, 64);

    EXPECT_EQ(timed.log, ff.log);
    EXPECT_EQ(timed.traps, ff.traps);
    EXPECT_EQ(timed.heap_sum, ff.heap_sum);
    EXPECT_EQ(timed.refs, ff.refs);
    EXPECT_LT(ff.cycles, timed.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, BatchInvariance,
    ::testing::Values(MachineConfig::Mode::hardware,
                      MachineConfig::Mode::exception),
    [](const ::testing::TestParamInfo<MachineConfig::Mode> &info) {
        return info.param == MachineConfig::Mode::exception ? "exception"
                                                            : "hardware";
    });

// ---------------------------------------------------------------------
// AccessBatch mechanics
// ---------------------------------------------------------------------

TEST(AccessBatch, RunFillsEveryResult)
{
    Machine m;
    AccessBatch batch(8);
    batch.push(Access::store(0x1000, wordBytes, 41));
    batch.push(Access::store(0x2000, wordBytes, 42));
    batch.push(Access::load(0x1000, wordBytes));
    batch.push(Access::load(0x2000, wordBytes));
    m.run(batch);

    EXPECT_EQ(batch[2].res.value, 41u);
    EXPECT_EQ(batch[3].res.value, 42u);
    EXPECT_EQ(batch[2].res.final_addr, 0x1000u);
    for (std::size_t i = 0; i < batch.size(); ++i)
        EXPECT_GT(batch[i].res.ready, 0u) << "ref " << i;
}

TEST(AccessBatch, DepLinkGatesAddressReadiness)
{
    // refs[1] chases the pointer loaded by refs[0]: its address cannot
    // be ready before the first load completes.
    Machine m;
    m.poke(0x3000, wordBytes, 0x4000);
    m.poke(0x4000, wordBytes, 777);

    AccessBatch batch(4);
    const std::size_t head = batch.push(Access::load(0x3000, wordBytes));
    batch.push(Access::load(0x4000, wordBytes),
               std::int32_t(head));
    m.run(batch);

    EXPECT_EQ(batch[0].res.value, 0x4000u);
    EXPECT_EQ(batch[1].res.value, 777u);
    EXPECT_GE(batch[1].res.ready, batch[0].res.ready);
}

TEST(AccessBatch, ClearKeepsCapacity)
{
    AccessBatch batch(2);
    EXPECT_TRUE(batch.empty());
    batch.push(Access::compute(1));
    batch.push(Access::compute(1));
    EXPECT_TRUE(batch.full());
    batch.clear();
    EXPECT_TRUE(batch.empty());
    EXPECT_EQ(batch.capacity(), 2u);
}

TEST(RefStreamApi, DefaultCapacityIsPositive)
{
    EXPECT_GE(defaultBatchCapacity(), 1u);
}

// ---------------------------------------------------------------------
// BatchEmitter semantics
// ---------------------------------------------------------------------

TEST(BatchEmitter, DefersStoresUntilFlush)
{
    Machine m;
    BatchEmitter em(m, 16);
    em.store(0x1000, wordBytes, 5);
    em.store(0x1000, wordBytes, 6); // later store wins after the drain
    EXPECT_EQ(m.peek(0x1000, wordBytes), 0u) << "store ran before flush";
    em.flush();
    EXPECT_EQ(m.peek(0x1000, wordBytes), 6u);
}

TEST(BatchEmitter, ValueOpsFlushPendingWork)
{
    // load/readFBit/unforwardedRead are flush-through: the deferred
    // store must be visible to the load that follows it, unprompted.
    Machine m;
    BatchEmitter em(m, 16);
    em.store(0x2000, wordBytes, 99);
    EXPECT_EQ(em.load(0x2000, wordBytes).value, 99u);

    em.unforwardedWrite(0x3000, 0x4000, true);
    EXPECT_TRUE(em.readFBit(0x3000));
    EXPECT_EQ(em.unforwardedRead(0x3000), 0x4000u);
}

TEST(BatchEmitter, AutoFlushesAtCapacity)
{
    Machine m;
    BatchEmitter em(m, 2);
    em.store(0x1000, wordBytes, 1);
    em.store(0x1008, wordBytes, 2); // second defer fills cap=2: drains
    EXPECT_EQ(m.peek(0x1000, wordBytes), 1u);
    EXPECT_EQ(m.peek(0x1008, wordBytes), 2u);
}

TEST(BatchEmitter, DestructorFlushes)
{
    Machine m;
    {
        BatchEmitter em(m, 16);
        em.store(0x5000, wordBytes, 123);
    }
    EXPECT_EQ(m.peek(0x5000, wordBytes), 123u);
}

// ---------------------------------------------------------------------
// RefStream draining
// ---------------------------------------------------------------------

/** Replays a fixed reference vector, honoring batch capacity. */
class VectorStream : public RefStream
{
  public:
    explicit VectorStream(std::vector<Access> refs)
        : refs_(std::move(refs))
    {
    }

    bool
    fill(AccessBatch &batch) override
    {
        ++fills_;
        bool appended = false;
        while (next_ < refs_.size() && !batch.full()) {
            batch.push(refs_[next_++]);
            appended = true;
        }
        return appended;
    }

    unsigned fills() const { return fills_; }

  private:
    std::vector<Access> refs_;
    std::size_t next_ = 0;
    unsigned fills_ = 0;
};

TEST(RefStreamApi, MachineDrainsStreamToExhaustion)
{
    // 600 refs: several times the default batch capacity, so the
    // clear/fill/run loop must cycle more than once.
    std::vector<Access> refs;
    for (unsigned i = 0; i < 300; ++i)
        refs.push_back(Access::store(0x10000 + i * wordBytes, wordBytes,
                                     i + 1));
    for (unsigned i = 0; i < 300; ++i)
        refs.push_back(Access::load(0x10000 + i * wordBytes, wordBytes));

    Machine m;
    VectorStream stream(refs);
    m.run(stream);

    EXPECT_EQ(m.refsExecuted(), 600u);
    EXPECT_GE(stream.fills(), 2u);
    for (unsigned i = 0; i < 300; ++i)
        ASSERT_EQ(m.peek(0x10000 + i * wordBytes, wordBytes), i + 1);
}

} // namespace
} // namespace memfwd
