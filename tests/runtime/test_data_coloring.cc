/** @file Unit tests for data coloring and tile copying. */

#include <gtest/gtest.h>

#include <set>

#include "runtime/data_coloring.hh"
#include "runtime/layout_backend.hh"
#include "runtime/machine.hh"
#include "runtime/sim_allocator.hh"

namespace memfwd
{
namespace
{

MachineConfig
directMapped()
{
    MachineConfig mc;
    mc.hierarchy.l1d.size_bytes = 4096;
    mc.hierarchy.l1d.assoc = 1;
    mc.hierarchy.setLineBytes(64);
    return mc;
}

struct ColorRig
{
    Machine m{directMapped()};
    SimAllocator alloc{m};
    RelocationPool pool{alloc, 4 << 20};
    ForwardingBackend fwd{m};

    /** Allocate n items of `bytes`, all mapping to cache set 0. */
    std::vector<Addr>
    conflictItems(unsigned n, unsigned bytes)
    {
        const unsigned cache = m.config().hierarchy.l1d.size_bytes;
        const Addr base = alloc.alloc(Addr(cache) * (n + 1));
        std::vector<Addr> items;
        for (unsigned i = 0; i < n; ++i) {
            const Addr a = base + Addr(i) * cache;
            items.push_back(a);
            for (unsigned off = 0; off < bytes; off += 8)
                m.access(Access::store(a + off, 8, i * 1000 + off));
        }
        return items;
    }
};

TEST(DataColoring, ItemsLandInDistinctColors)
{
    ColorRig rig;
    const auto items = rig.conflictItems(8, 64);
    const unsigned cache = rig.m.config().hierarchy.l1d.size_bytes;
    const ColoringResult r =
        colorRelocate(rig.fwd, items, 64, rig.pool, cache, 64, 8);
    ASSERT_EQ(r.new_addrs.size(), 8u);

    // New homes of consecutive items occupy disjoint set bands.
    std::set<Addr> bands;
    for (Addr a : r.new_addrs)
        bands.insert((a % cache) / (cache / 8));
    EXPECT_EQ(bands.size(), 8u);
}

TEST(DataColoring, ContentsPreservedThroughStalePointers)
{
    ColorRig rig;
    const auto items = rig.conflictItems(6, 64);
    const unsigned cache = rig.m.config().hierarchy.l1d.size_bytes;
    colorRelocate(rig.fwd, items, 64, rig.pool, cache, 64, 6);
    for (unsigned i = 0; i < 6; ++i) {
        for (unsigned off = 0; off < 64; off += 8) {
            EXPECT_EQ(rig.m.access(Access::load(items[i] + off, 8)).value,
                      i * 1000 + off);
        }
    }
}

TEST(DataColoring, RemovesConflictMisses)
{
    ColorRig rig;
    const auto items = rig.conflictItems(8, 64);
    const unsigned cache = rig.m.config().hierarchy.l1d.size_bytes;

    // Count FULL misses: a re-reference combining with an in-flight
    // fill (a partial miss) is overlap, not a conflict.
    auto sweepMisses = [&](const std::vector<Addr> &addrs) {
        rig.m.hierarchy().reset();
        for (int pass = 0; pass < 30; ++pass) {
            for (Addr a : addrs)
                rig.m.access(Access::load(a, 8));
            // Space the passes out so fills finish; otherwise
            // re-references combine with in-flight fills instead of
            // exposing the conflict refetches.
            rig.m.access(Access::compute(600));
        }
        return rig.m.hierarchy().l1d().stats().load_full_misses;
    };

    const std::uint64_t before = sweepMisses(items);
    const ColoringResult r =
        colorRelocate(rig.fwd, items, 64, rig.pool, cache, 64, 8);
    const std::uint64_t after = sweepMisses(r.new_addrs);

    // Direct-mapped + 8 same-set items: nearly every access refetched
    // before; after coloring only the cold fills remain.
    EXPECT_GE(before, 8u * 20);
    EXPECT_LE(after, 8u);
}

TEST(DataColoring, RoundRobinAcrossFewerColors)
{
    ColorRig rig;
    const auto items = rig.conflictItems(8, 64);
    const unsigned cache = rig.m.config().hierarchy.l1d.size_bytes;
    const ColoringResult r =
        colorRelocate(rig.fwd, items, 64, rig.pool, cache, 64, 4);
    // Items i and i+4 share a color; i and i+1 do not.
    const auto band = [&](Addr a) {
        return (a % cache) / (cache / 4);
    };
    EXPECT_EQ(band(r.new_addrs[0]), band(r.new_addrs[4]));
    EXPECT_NE(band(r.new_addrs[0]), band(r.new_addrs[1]));
}

TEST(CopyTile, ContiguousAndIntact)
{
    ColorRig rig;
    const unsigned cache = rig.m.config().hierarchy.l1d.size_bytes;
    const Addr matrix = rig.alloc.alloc(Addr(cache) * 9);
    for (unsigned r = 0; r < 8; ++r)
        for (unsigned off = 0; off < 128; off += 8)
            rig.m.access(Access::store(matrix + Addr(r) * cache + off, 8, r * 7 + off));

    const Addr buf =
        copyTile(rig.fwd, matrix, 8, 128, cache, rig.pool);
    for (unsigned r = 0; r < 8; ++r) {
        for (unsigned off = 0; off < 128; off += 8) {
            EXPECT_EQ(rig.m.access(Access::load(buf + Addr(r) * 128 + off, 8)).value,
                      r * 7 + off);
            // Old address still works through forwarding.
            EXPECT_EQ(
                rig.m.access(Access::load(matrix + Addr(r) * cache + off, 8)).value,
                r * 7 + off);
        }
    }
}

TEST(DataColoringDeathTest, ZeroColorsRejected)
{
    ColorRig rig;
    const auto items = rig.conflictItems(2, 64);
    EXPECT_DEATH(colorRelocate(rig.fwd, items, 64, rig.pool, 4096, 64, 0),
                 "at least one color");
}

} // namespace
} // namespace memfwd
