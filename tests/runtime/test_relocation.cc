/** @file Unit tests for Relocate() (Figure 4(a)). */

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "core/cycle_check.hh"
#include "core/fault_injector.hh"
#include "runtime/machine.hh"
#include "runtime/relocation.hh"
#include "runtime/sim_allocator.hh"

namespace memfwd
{
namespace
{

/** Sparse heap image: every word with a nonzero payload or a set fbit.
 *  Rollback may leave freshly materialized all-zero pages behind, so
 *  bit-identity is judged on content, not on the page set. */
std::map<Addr, std::pair<Word, bool>>
heapImage(const TaggedMemory &mem)
{
    std::map<Addr, std::pair<Word, bool>> image;
    for (Addr base : mem.mappedPageBases()) {
        for (Addr a = base; a < base + TaggedMemory::pageBytes;
             a += wordBytes) {
            const Word payload = mem.rawReadWord(a);
            const bool fbit = mem.fbit(a);
            if (payload != 0 || fbit)
                image.emplace(a, std::make_pair(payload, fbit));
        }
    }
    return image;
}

TEST(Relocate, SingleWordObject)
{
    Machine m;
    m.access(Access::store(0x1000, 8, 4711));
    relocate(m, 0x1000, 0x9000, 1);
    EXPECT_EQ(m.mem().rawReadWord(0x9000), 4711u);
    EXPECT_TRUE(m.mem().fbit(0x1000));
    EXPECT_EQ(m.mem().rawReadWord(0x1000), 0x9000u);
    // A stale read still sees the data.
    EXPECT_EQ(m.access(Access::load(0x1000, 8)).value, 4711u);
}

TEST(Relocate, MultiWordObjectForwardsEachWord)
{
    Machine m;
    for (unsigned w = 0; w < 4; ++w)
        m.access(Access::store(0x1000 + w * 8, 8, 100 + w));
    relocate(m, 0x1000, 0x9000, 4);
    for (unsigned w = 0; w < 4; ++w) {
        EXPECT_EQ(m.mem().rawReadWord(0x9000 + w * 8), 100 + w);
        EXPECT_TRUE(m.mem().fbit(0x1000 + w * 8));
        EXPECT_EQ(m.mem().rawReadWord(0x1000 + w * 8), 0x9000u + w * 8);
        EXPECT_EQ(m.access(Access::load(0x1000 + w * 8, 8)).value, 100 + w);
    }
}

TEST(Relocate, AppendsToExistingChain)
{
    // Figure 4(a): Relocate loops until a clear forwarding bit so the
    // target is appended at the END of the chain.
    Machine m;
    m.access(Access::store(0x1000, 8, 55));
    relocate(m, 0x1000, 0x2000, 1);
    relocate(m, 0x1000, 0x3000, 1); // relocate again via the OLD address
    // Chain: 0x1000 -> 0x2000 -> 0x3000.
    EXPECT_EQ(m.mem().rawReadWord(0x1000), 0x2000u);
    EXPECT_EQ(m.mem().rawReadWord(0x2000), 0x3000u);
    EXPECT_TRUE(m.mem().fbit(0x2000));
    EXPECT_EQ(m.mem().rawReadWord(0x3000), 55u);
    EXPECT_FALSE(m.mem().fbit(0x3000));
    const AccessResult r = m.access(Access::load(0x1000, 8));
    EXPECT_EQ(r.value, 55u);
    EXPECT_EQ(r.hops, 2u);
}

TEST(Relocate, SecondRelocationViaCurrentAddress)
{
    Machine m;
    m.access(Access::store(0x1000, 8, 66));
    relocate(m, 0x1000, 0x2000, 1);
    // The program relocates from the CURRENT location this time.
    relocate(m, 0x2000, 0x3000, 1);
    EXPECT_EQ(m.access(Access::load(0x1000, 8)).value, 66u);
    EXPECT_EQ(m.access(Access::load(0x1000, 8)).hops, 2u);
    EXPECT_EQ(m.access(Access::load(0x2000, 8)).hops, 1u);
    EXPECT_EQ(m.access(Access::load(0x3000, 8)).hops, 0u);
}

TEST(Relocate, SubwordsTravelWithTheirWord)
{
    Machine m;
    m.access(Access::store(0x1000, 2, 0x1111));
    m.access(Access::store(0x1002, 2, 0x2222));
    m.access(Access::store(0x1004, 4, 0x33334444));
    relocate(m, 0x1000, 0x9000, 1);
    EXPECT_EQ(m.access(Access::load(0x1000, 2)).value, 0x1111u);
    EXPECT_EQ(m.access(Access::load(0x1002, 2)).value, 0x2222u);
    EXPECT_EQ(m.access(Access::load(0x1004, 4)).value, 0x33334444u);
    // And stale subword stores land in the new home.
    m.access(Access::store(0x1002, 2, 0xabcd));
    EXPECT_EQ(m.mem().readBytes(0x9002, 2), 0xabcdu);
}

TEST(Relocate, ChargesTimedWork)
{
    Machine m;
    const Cycles before = m.cycles();
    const std::uint64_t instr = m.cpu().instructions();
    relocate(m, 0x1000, 0x9000, 8);
    EXPECT_GT(m.cycles(), before);
    // Per word: Read_FBit + Unforwarded_Read + store + Unforwarded_Write.
    EXPECT_EQ(m.cpu().instructions() - instr, 8u * 4);
}

TEST(ChaseChain, FollowsToFinalAddress)
{
    Machine m;
    m.forwarding().forwardWord(0x1000, 0x2000);
    m.forwarding().forwardWord(0x2000, 0x3000);
    EXPECT_EQ(chaseChain(m, 0x1000), 0x3000u);
    EXPECT_EQ(chaseChain(m, 0x1006), 0x3006u); // offset preserved
    EXPECT_EQ(chaseChain(m, 0x4000), 0x4000u); // no chain
}

TEST(ChaseChain, ThrowsOnCycleInsteadOfWedging)
{
    Machine m;
    m.mem().unforwardedWrite(0x1000, 0x2000, true);
    m.mem().unforwardedWrite(0x2000, 0x1000, true);
    try {
        chaseChain(m, 0x1000);
        FAIL() << "cycle not detected";
    } catch (const ForwardingCycleError &e) {
        EXPECT_EQ(e.start(), 0x1000u);
        EXPECT_EQ(e.length(), 2u);
    }
}

TEST(Relocate, MidRelocationFailureRollsBackBitIdentically)
{
    Machine m;
    for (unsigned w = 0; w < 6; ++w)
        m.access(Access::store(0x1000 + w * 8, 8, 0x500 + w));
    const auto before = heapImage(m.mem());

    // The injector fails the 4th per-word step: three words have
    // already been forwarded when the failure hits.
    FaultInjector faults;
    faults.armSpec("allocfail@relocate:nth=4");
    m.setFaultInjector(&faults);
    EXPECT_THROW(relocate(m, 0x1000, 0x9000, 6), AllocFailure);
    EXPECT_EQ(faults.fired(), 1u);

    // Every payload and forwarding bit is exactly as before the call.
    EXPECT_EQ(heapImage(m.mem()), before);
    for (unsigned w = 0; w < 6; ++w) {
        EXPECT_FALSE(m.mem().fbit(0x1000 + w * 8));
        EXPECT_EQ(m.access(Access::load(0x1000 + w * 8, 8)).value, 0x500 + w);
    }

    // The fault is spent; the same relocation now goes through whole.
    relocate(m, 0x1000, 0x9000, 6);
    for (unsigned w = 0; w < 6; ++w)
        EXPECT_EQ(m.access(Access::load(0x1000 + w * 8, 8)).value, 0x500 + w);
}

TEST(Relocate, RollbackRestoresExistingChains)
{
    // Words that already forward must roll back to their OLD chain
    // shape, not to unforwarded.
    Machine m;
    m.access(Access::store(0x1000, 8, 11));
    m.access(Access::store(0x1008, 8, 22));
    relocate(m, 0x1000, 0x5000, 2); // pre-existing 1-hop chains
    const auto before = heapImage(m.mem());

    FaultInjector faults;
    faults.armSpec("allocfail@relocate:nth=2");
    m.setFaultInjector(&faults);
    EXPECT_THROW(relocate(m, 0x1000, 0x9000, 2), AllocFailure);

    EXPECT_EQ(heapImage(m.mem()), before);
    EXPECT_EQ(m.access(Access::load(0x1000, 8)).value, 11u);
    EXPECT_EQ(m.access(Access::load(0x1000, 8)).hops, 1u); // chain length unchanged
    EXPECT_EQ(m.access(Access::load(0x1008, 8)).value, 22u);
}

TEST(Relocate, CyclicSourceChainRollsBack)
{
    // Word 2's chain is a cycle: the relocation must detect it, throw,
    // and undo the two words it already forwarded.
    Machine m;
    m.access(Access::store(0x1000, 8, 1));
    m.access(Access::store(0x1008, 8, 2));
    m.mem().unforwardedWrite(0x1010, 0x7000, true);
    m.mem().unforwardedWrite(0x7000, 0x1010, true);
    const auto before = heapImage(m.mem());

    EXPECT_THROW(relocate(m, 0x1000, 0x9000, 3), ForwardingCycleError);
    EXPECT_EQ(heapImage(m.mem()), before);
}

TEST(RelocateDeathTest, MisalignedEndpoints)
{
    Machine m;
    EXPECT_DEATH(relocate(m, 0x1001, 0x2000, 1), "word-aligned");
    EXPECT_DEATH(relocate(m, 0x1000, 0x2002, 1), "word-aligned");
}

} // namespace
} // namespace memfwd
