/** @file Unit tests for the MSHR file. */

#include <gtest/gtest.h>

#include "cache/mshr.hh"

namespace memfwd
{
namespace
{

TEST(Mshr, NoOutstandingFillInitially)
{
    MshrFile m(4);
    EXPECT_EQ(m.outstandingFill(0x100, 0), 0u);
    EXPECT_EQ(m.busyAt(0), 0u);
}

TEST(Mshr, AllocateCompleteTracksFill)
{
    MshrFile m(4);
    EXPECT_EQ(m.allocate(0x100, 10), 10u);
    m.complete(0x100, 80);
    EXPECT_EQ(m.outstandingFill(0x100, 20), 80u);
    EXPECT_EQ(m.outstandingFill(0x100, 80), 0u); // done by then
    EXPECT_EQ(m.outstandingFill(0x200, 20), 0u); // different line
}

TEST(Mshr, PendingEntryVisibleBeforeComplete)
{
    MshrFile m(2);
    m.allocate(0x100, 5);
    // Before complete(), the entry reports "outstanding now".
    EXPECT_EQ(m.outstandingFill(0x100, 5), 5u);
    m.complete(0x100, 50);
}

TEST(Mshr, FullFileDelaysAllocation)
{
    MshrFile m(2);
    m.allocate(0xa0, 0);
    m.complete(0xa0, 100);
    m.allocate(0xb0, 0);
    m.complete(0xb0, 120);
    // Both busy at cycle 0; third miss waits for the earliest (100).
    EXPECT_EQ(m.allocate(0xc0, 0), 100u);
    m.complete(0xc0, 200);
    EXPECT_EQ(m.allocationStalls(), 1u);
}

TEST(Mshr, EntriesExpireAndGetReused)
{
    MshrFile m(1);
    m.allocate(0xa0, 0);
    m.complete(0xa0, 50);
    // At cycle 60 the single entry is free again.
    EXPECT_EQ(m.allocate(0xb0, 60), 60u);
    m.complete(0xb0, 130);
    EXPECT_EQ(m.allocationStalls(), 0u);
}

TEST(Mshr, PeakOccupancyTracked)
{
    MshrFile m(4);
    m.allocate(0x1, 0);
    m.complete(0x1, 100);
    m.allocate(0x2, 0);
    m.complete(0x2, 100);
    m.allocate(0x3, 0);
    m.complete(0x3, 100);
    EXPECT_EQ(m.peakOccupancy(), 3u);
    EXPECT_EQ(m.busyAt(50), 3u);
    EXPECT_EQ(m.busyAt(150), 0u);
}

TEST(MshrDeathTest, CompleteWithoutAllocatePanics)
{
    MshrFile m(2);
    EXPECT_DEATH(m.complete(0x123, 10), "without matching allocate");
}

TEST(MshrDeathTest, ZeroEntriesRejected)
{
    EXPECT_DEATH(MshrFile m(0), "at least one entry");
}

} // namespace
} // namespace memfwd
