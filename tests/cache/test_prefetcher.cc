/** @file Unit tests for the block prefetcher. */

#include <gtest/gtest.h>

#include "cache/prefetcher.hh"

namespace memfwd
{
namespace
{

HierarchyConfig
cfg()
{
    HierarchyConfig c;
    c.l1d.size_bytes = 2048;
    c.l1d.line_bytes = 32;
    c.l2.line_bytes = 32;
    return c;
}

TEST(Prefetcher, SingleLinePrefetchFillsL1)
{
    MemoryHierarchy h(cfg());
    Prefetcher p(h);
    p.issue(0x1000, 1, 0);
    EXPECT_TRUE(h.l1d().contains(0x1000));
    EXPECT_EQ(p.instructions(), 1u);
    EXPECT_EQ(p.issued(), 1u);
}

TEST(Prefetcher, BlockPrefetchCoversConsecutiveLines)
{
    MemoryHierarchy h(cfg());
    Prefetcher p(h);
    p.issue(0x2000, 4, 0);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_TRUE(h.l1d().contains(0x2000 + i * 32));
    EXPECT_FALSE(h.l1d().contains(0x2000 + 4 * 32));
    EXPECT_EQ(p.instructions(), 1u);
    EXPECT_EQ(p.issued(), 4u);
}

TEST(Prefetcher, UnalignedAddressPrefetchesContainingLines)
{
    MemoryHierarchy h(cfg());
    Prefetcher p(h);
    p.issue(0x3010, 2, 0); // mid-line
    EXPECT_TRUE(h.l1d().contains(0x3000));
    EXPECT_TRUE(h.l1d().contains(0x3020));
}

TEST(Prefetcher, ReturnsLastFillCompletion)
{
    MemoryHierarchy h(cfg());
    Prefetcher p(h);
    const Cycles done = p.issue(0x4000, 2, 100);
    EXPECT_GT(done, 100u);
    // A prefetch of already-resident lines completes at hit latency.
    const Cycles again = p.issue(0x4000, 2, done + 10);
    EXPECT_EQ(again, done + 10 + h.config().l1d.hit_latency);
}

TEST(Prefetcher, DemandHitAfterPrefetchCountsUseful)
{
    MemoryHierarchy h(cfg());
    Prefetcher p(h);
    p.issue(0x5000, 2, 0);
    h.access(0x5020, AccessType::load, 500);
    EXPECT_EQ(h.l1d().stats().useful_prefetches, 1u);
}

TEST(Prefetcher, ClearStats)
{
    MemoryHierarchy h(cfg());
    Prefetcher p(h);
    p.issue(0x6000, 3, 0);
    p.clearStats();
    EXPECT_EQ(p.instructions(), 0u);
    EXPECT_EQ(p.issued(), 0u);
}

} // namespace
} // namespace memfwd
