/** @file Unit tests for one cache level. */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "mem/main_memory.hh"

namespace memfwd
{
namespace
{

/** A fake backing level with fixed latency and byte accounting. */
class FakeLevel : public MemLevel
{
  public:
    explicit FakeLevel(Cycles latency) : latency_(latency) {}

    Result
    access(Addr addr, AccessType type, Cycles now) override
    {
        (void)addr;
        (void)type;
        ++fills;
        return {now + latency_, MissKind::full, 0};
    }

    void
    writeback(Addr line_addr, Cycles now) override
    {
        (void)line_addr;
        (void)now;
        ++writebacks;
    }

    unsigned fills = 0;
    unsigned writebacks = 0;

  private:
    Cycles latency_;
};

CacheConfig
smallConfig()
{
    // 4 sets x 2 ways x 32B lines = 256B cache.
    return {.name = "t",
            .size_bytes = 256,
            .assoc = 2,
            .line_bytes = 32,
            .hit_latency = 1,
            .mshrs = 4};
}

TEST(Cache, MissThenHit)
{
    FakeLevel below(50);
    Cache c(smallConfig(), below);

    auto miss = c.access(0x1000, AccessType::load, 0);
    EXPECT_EQ(miss.kind, MissKind::full);
    EXPECT_EQ(miss.ready, 51u); // 1 cycle lookup + 50 below

    auto hit = c.access(0x1008, AccessType::load, 60);
    EXPECT_EQ(hit.kind, MissKind::hit);
    EXPECT_EQ(hit.ready, 61u);

    EXPECT_EQ(c.stats().load_full_misses, 1u);
    EXPECT_EQ(c.stats().load_hits, 1u);
}

TEST(Cache, PartialMissCombinesWithInflightFill)
{
    FakeLevel below(50);
    Cache c(smallConfig(), below);

    auto first = c.access(0x1000, AccessType::load, 0);
    // Second access to the same line while the fill is in flight: a
    // partial miss that waits for the fill, not a second fetch.
    auto second = c.access(0x1010, AccessType::load, 5);
    EXPECT_EQ(second.kind, MissKind::partial);
    EXPECT_EQ(second.ready, first.ready);
    EXPECT_EQ(below.fills, 1u);
    EXPECT_EQ(c.stats().load_partial_misses, 1u);
}

TEST(Cache, PartialMissNearFillEndPaysAtLeastHitLatency)
{
    FakeLevel below(50);
    Cache c(smallConfig(), below);
    c.access(0x1000, AccessType::load, 0); // ready 51
    auto late = c.access(0x1000, AccessType::load, 51);
    EXPECT_EQ(late.kind, MissKind::hit);
    EXPECT_EQ(late.ready, 52u);
}

TEST(Cache, StoreMissAllocatesAndDirties)
{
    FakeLevel below(50);
    Cache c(smallConfig(), below);
    c.access(0x2000, AccessType::store, 0);
    EXPECT_EQ(c.stats().store_full_misses, 1u);
    EXPECT_TRUE(c.contains(0x2000));

    // Evict it by filling the set: 4 sets -> same set every 4 lines.
    const Addr set_stride = 32 * 4;
    c.access(0x2000 + set_stride, AccessType::load, 100);
    c.access(0x2000 + 2 * set_stride, AccessType::load, 200);
    EXPECT_EQ(below.writebacks, 1u);
    EXPECT_EQ(c.stats().writebacks, 1u);
    EXPECT_EQ(c.stats().bytes_out, 32u);
}

TEST(Cache, LruReplacement)
{
    FakeLevel below(10);
    Cache c(smallConfig(), below);
    const Addr stride = 32 * 4; // same set
    c.access(0x0, AccessType::load, 0);          // way A
    c.access(stride, AccessType::load, 20);      // way B
    c.access(0x0, AccessType::load, 40);         // touch A again
    c.access(2 * stride, AccessType::load, 60);  // evicts B (LRU)
    EXPECT_TRUE(c.contains(0x0));
    EXPECT_FALSE(c.contains(stride));
    EXPECT_TRUE(c.contains(2 * stride));
}

TEST(Cache, BytesInCountsFills)
{
    FakeLevel below(10);
    Cache c(smallConfig(), below);
    c.access(0x0, AccessType::load, 0);
    c.access(0x100, AccessType::load, 50);
    EXPECT_EQ(c.stats().bytes_in, 64u);
}

TEST(Cache, PrefetchFillsWithoutDemandStats)
{
    FakeLevel below(50);
    Cache c(smallConfig(), below);
    c.access(0x3000, AccessType::prefetch, 0);
    EXPECT_EQ(c.stats().prefetch_misses, 1u);
    EXPECT_EQ(c.stats().load_full_misses, 0u);

    // Demand hit on the prefetched line counts usefulness.
    auto hit = c.access(0x3000, AccessType::load, 100);
    EXPECT_EQ(hit.kind, MissKind::hit);
    EXPECT_EQ(c.stats().useful_prefetches, 1u);
}

TEST(Cache, UselessPrefetchNotCounted)
{
    FakeLevel below(10);
    Cache c(smallConfig(), below);
    c.access(0x3000, AccessType::prefetch, 0);
    // Evict it without ever touching it.
    const Addr stride = 32 * 4;
    c.access(0x3000 + stride, AccessType::load, 50);
    c.access(0x3000 + 2 * stride, AccessType::load, 100);
    EXPECT_EQ(c.stats().useful_prefetches, 0u);
}

TEST(Cache, WritebackFromAboveDirtiesResidentLine)
{
    FakeLevel below(10);
    Cache c(smallConfig(), below);
    c.access(0x4000, AccessType::load, 0);
    c.writeback(0x4000, 50);
    // Force eviction; the dirty line must be written down.
    const Addr stride = 32 * 4;
    c.access(0x4000 + stride, AccessType::load, 60);
    c.access(0x4000 + 2 * stride, AccessType::load, 70);
    EXPECT_EQ(below.writebacks, 1u);
}

TEST(Cache, WritebackFromAboveAllocatesIfAbsent)
{
    FakeLevel below(10);
    Cache c(smallConfig(), below);
    c.writeback(0x5000, 0);
    EXPECT_TRUE(c.contains(0x5000));
    EXPECT_EQ(below.fills, 0u); // no fetch: whole line arrived
}

TEST(Cache, FlushEmptiesEverything)
{
    FakeLevel below(10);
    Cache c(smallConfig(), below);
    c.access(0x0, AccessType::load, 0);
    c.flush();
    EXPECT_FALSE(c.contains(0x0));
}

TEST(CacheDeathTest, BadGeometryRejected)
{
    FakeLevel below(10);
    CacheConfig bad = smallConfig();
    bad.line_bytes = 48; // not a power of two
    EXPECT_DEATH(Cache(bad, below), "power of two");
}

// Parameterized sweep: the hit/miss invariant holds for every line
// size the paper uses.
class CacheLineSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheLineSweep, SequentialAccessMissesOncePerLine)
{
    const unsigned line = GetParam();
    FakeLevel below(10);
    CacheConfig cfg{.name = "s",
                    .size_bytes = 8 * 1024,
                    .assoc = 2,
                    .line_bytes = line,
                    .hit_latency = 1,
                    .mshrs = 8};
    Cache c(cfg, below);
    const unsigned total = 2048;
    Cycles t = 0;
    for (unsigned off = 0; off < total; off += 8)
        t = c.access(0x10000 + off, AccessType::load, t).ready;
    EXPECT_EQ(c.stats().load_full_misses, total / line);
    EXPECT_EQ(c.stats().load_hits, total / 8 - total / line);
}

INSTANTIATE_TEST_SUITE_P(LineSizes, CacheLineSweep,
                         ::testing::Values(32u, 64u, 128u, 256u));

} // namespace
} // namespace memfwd
