/** @file Unit tests for the cache replacement policies. */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace memfwd
{
namespace
{

/** Fixed-latency backing level. */
class Below : public MemLevel
{
  public:
    Result
    access(Addr, AccessType, Cycles now) override
    {
        return {now + 10, MissKind::full, 0};
    }
    void writeback(Addr, Cycles) override {}
};

CacheConfig
cfgWith(ReplacementPolicy policy)
{
    return {.name = "t",
            .size_bytes = 256, // 4 sets x 2 ways x 32B
            .assoc = 2,
            .line_bytes = 32,
            .hit_latency = 1,
            .mshrs = 4,
            .replacement = policy};
}

TEST(Replacement, LruKeepsRecentlyTouched)
{
    Below below;
    Cache c(cfgWith(ReplacementPolicy::lru), below);
    const Addr stride = 32 * 4; // same set
    c.access(0, AccessType::load, 0);
    c.access(stride, AccessType::load, 100);
    c.access(0, AccessType::load, 200);          // refresh line 0
    c.access(2 * stride, AccessType::load, 300); // evicts `stride`
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(stride));
}

TEST(Replacement, FifoIgnoresTouches)
{
    Below below;
    Cache c(cfgWith(ReplacementPolicy::fifo), below);
    const Addr stride = 32 * 4;
    c.access(0, AccessType::load, 0);            // filled first
    c.access(stride, AccessType::load, 100);
    c.access(0, AccessType::load, 200);          // touch: FIFO ignores
    c.access(2 * stride, AccessType::load, 300); // evicts 0 (oldest fill)
    EXPECT_FALSE(c.contains(0));
    EXPECT_TRUE(c.contains(stride));
}

TEST(Replacement, RandomEvictsSomethingValidStateStaysSane)
{
    Below below;
    Cache c(cfgWith(ReplacementPolicy::random), below);
    const Addr stride = 32 * 4;
    // Fill the set, then force 20 evictions; exactly 2 of the 3 hot
    // lines may be resident at any time.
    for (int i = 0; i < 20; ++i)
        c.access(Addr(i % 3) * stride, AccessType::load, Cycles(i) * 50);
    unsigned resident = 0;
    for (int i = 0; i < 3; ++i)
        resident += c.contains(Addr(i) * stride);
    EXPECT_LE(resident, 2u);
    EXPECT_GE(resident, 1u);
}

TEST(Replacement, RandomIsDeterministicAcrossRuns)
{
    Below b1, b2;
    Cache c1(cfgWith(ReplacementPolicy::random), b1);
    Cache c2(cfgWith(ReplacementPolicy::random), b2);
    const Addr stride = 32 * 4;
    for (int i = 0; i < 50; ++i) {
        const Addr a = Addr(i % 5) * stride;
        c1.access(a, AccessType::load, Cycles(i) * 20);
        c2.access(a, AccessType::load, Cycles(i) * 20);
    }
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(c1.contains(Addr(i) * stride),
                  c2.contains(Addr(i) * stride));
    }
    EXPECT_EQ(c1.stats().load_full_misses, c2.stats().load_full_misses);
}

// A cyclic sweep one line larger than the set is LRU's worst case:
// LRU evicts exactly the line needed next; FIFO behaves identically
// here, but RANDOM keeps some lines by luck.
TEST(Replacement, RandomBeatsLruOnCyclicOverflow)
{
    Below bl, br;
    Cache lru(cfgWith(ReplacementPolicy::lru), bl);
    Cache rnd(cfgWith(ReplacementPolicy::random), br);
    const Addr stride = 32 * 4;
    Cycles t = 0;
    for (int round = 0; round < 40; ++round) {
        for (int i = 0; i < 3; ++i) { // 3 lines, 2 ways: overflow by 1
            t += 50;
            lru.access(Addr(i) * stride, AccessType::load, t);
            rnd.access(Addr(i) * stride, AccessType::load, t);
        }
    }
    EXPECT_GT(lru.stats().load_full_misses,
              rnd.stats().load_full_misses);
}

} // namespace
} // namespace memfwd
