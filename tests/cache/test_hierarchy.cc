/** @file Unit tests for the two-level hierarchy. */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

namespace memfwd
{
namespace
{

HierarchyConfig
testConfig(unsigned line = 32)
{
    HierarchyConfig cfg;
    cfg.l1d = {.name = "l1d",
               .size_bytes = 1024,
               .assoc = 2,
               .line_bytes = line,
               .hit_latency = 1,
               .mshrs = 4};
    cfg.l2 = {.name = "l2",
              .size_bytes = 16 * 1024,
              .assoc = 4,
              .line_bytes = line,
              .hit_latency = 10,
              .mshrs = 8};
    cfg.memory = {.latency = 70, .bytesPerCycle = 8};
    return cfg;
}

TEST(Hierarchy, ColdMissGoesToMemory)
{
    MemoryHierarchy h(testConfig());
    auto r = h.access(0x1000, AccessType::load, 0);
    EXPECT_EQ(r.depth, 2u);
    // 1 (L1 lookup) + 10 (L2 lookup) + 70 + 4 burst cycles.
    EXPECT_EQ(r.ready, 85u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    MemoryHierarchy h(testConfig());
    // Fill far beyond L1 (1KB) but within L2 (16KB).
    Cycles t = 0;
    for (Addr a = 0; a < 4 * 1024; a += 32)
        t = h.access(a, AccessType::load, t).ready;
    // Address 0 has been evicted from L1 but lives in L2.
    auto r = h.access(0, AccessType::load, t + 1000);
    EXPECT_EQ(r.depth, 1u);
    EXPECT_EQ(r.l1, MissKind::full);
}

TEST(Hierarchy, L1HitIsCheap)
{
    MemoryHierarchy h(testConfig());
    h.access(0x40, AccessType::load, 0);
    auto r = h.access(0x40, AccessType::load, 500);
    EXPECT_EQ(r.depth, 0u);
    EXPECT_EQ(r.ready, 501u);
}

TEST(Hierarchy, TrafficCountersTrackLinks)
{
    MemoryHierarchy h(testConfig());
    h.access(0x0, AccessType::load, 0);
    // One line filled into both L1 and L2.
    EXPECT_EQ(h.l1L2Bytes(), 32u);
    EXPECT_EQ(h.l2MemBytes(), 32u);
    EXPECT_EQ(h.memory().bytesTransferred(), 32u);
}

TEST(Hierarchy, DirtyEvictionsPropagateTraffic)
{
    MemoryHierarchy h(testConfig());
    // Dirty many L1 lines mapping to the same sets; evictions write
    // back to L2 (bytes_out on the L1<->L2 link).
    Cycles t = 0;
    for (Addr a = 0; a < 8 * 1024; a += 32)
        t = h.access(a, AccessType::store, t).ready;
    EXPECT_GT(h.l1d().stats().writebacks, 0u);
    EXPECT_GT(h.l1L2Bytes(), h.l1d().stats().bytes_in);
}

TEST(Hierarchy, ClearStatsKeepsContents)
{
    MemoryHierarchy h(testConfig());
    h.access(0x80, AccessType::load, 0);
    h.clearStats();
    EXPECT_EQ(h.l1L2Bytes(), 0u);
    auto r = h.access(0x80, AccessType::load, 100);
    EXPECT_EQ(r.l1, MissKind::hit);
}

TEST(Hierarchy, ResetDropsContents)
{
    MemoryHierarchy h(testConfig());
    h.access(0x80, AccessType::load, 0);
    h.reset();
    auto r = h.access(0x80, AccessType::load, 100);
    EXPECT_EQ(r.l1, MissKind::full);
}

TEST(HierarchyDeathTest, MixedLineSizesRejected)
{
    HierarchyConfig cfg = testConfig();
    cfg.l2.line_bytes = 64;
    EXPECT_DEATH(MemoryHierarchy h(cfg), "mixed line sizes");
}

// The paper's premise: with no spatial locality, longer lines waste
// bandwidth without reducing misses much.
TEST(Hierarchy, LongLinesWasteBandwidthOnScatteredAccesses)
{
    MemoryHierarchy h32(testConfig(32));
    MemoryHierarchy h128(testConfig(128));
    // Touch one word every 512 bytes: no spatial locality at all.
    Cycles t32 = 0, t128 = 0;
    for (Addr a = 0; a < 64 * 1024; a += 512) {
        t32 = h32.access(a, AccessType::load, t32).ready;
        t128 = h128.access(a, AccessType::load, t128).ready;
    }
    EXPECT_EQ(h32.l1d().stats().loadMisses(),
              h128.l1d().stats().loadMisses());
    EXPECT_EQ(h128.l2MemBytes(), 4 * h32.l2MemBytes());
}

// And the payoff: with perfect spatial locality, longer lines cut
// misses proportionally.
TEST(Hierarchy, LongLinesPrefetchSequentialAccesses)
{
    MemoryHierarchy h32(testConfig(32));
    MemoryHierarchy h128(testConfig(128));
    Cycles t32 = 0, t128 = 0;
    for (Addr a = 0; a < 16 * 1024; a += 8) {
        t32 = h32.access(a, AccessType::load, t32).ready;
        t128 = h128.access(a, AccessType::load, t128).ready;
    }
    EXPECT_EQ(h32.l1d().stats().loadMisses(),
              4 * h128.l1d().stats().loadMisses());
}

} // namespace
} // namespace memfwd
