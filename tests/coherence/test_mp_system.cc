/** @file Unit tests for the multiprocessor + forwarding substrate. */

#include <gtest/gtest.h>

#include "coherence/mp_system.hh"
#include "core/cycle_check.hh"

namespace memfwd
{
namespace
{

TEST(MpSystem, SharedMemoryVisibleToAllProcessors)
{
    MpSystem sys;
    sys.store(0, 0x1000, 8, 42);
    EXPECT_EQ(sys.load(1, 0x1000, 8), 42u);
    EXPECT_EQ(sys.load(3, 0x1000, 8), 42u);
}

TEST(MpSystem, ClocksAreLocal)
{
    MpSystem sys;
    sys.compute(0, 1000);
    EXPECT_EQ(sys.clock(0), 1000u);
    EXPECT_EQ(sys.clock(1), 0u);
    EXPECT_EQ(sys.elapsed(), 1000u);
}

TEST(MpSystem, RelocationIsVisibleEverywhere)
{
    MpSystem sys;
    sys.store(0, 0x1000, 8, 7);
    sys.relocate(0, 0x1000, 0x5000, 1);
    // Processor 2 reads via the stale address: forwarded.
    EXPECT_EQ(sys.load(2, 0x1000, 8), 7u);
    EXPECT_GT(sys.forwardedRefs(), 0u);
    // And a processor writing through the stale address hits the new
    // home, visible to everyone.
    sys.store(3, 0x1004, 4, 99);
    EXPECT_EQ(sys.load(1, 0x5004, 4), 99u);
}

TEST(MpSystem, RelocationInvalidatesStaleCachedCopies)
{
    MpSystem sys;
    sys.store(0, 0x1000, 8, 5);
    // Processor 1 caches the line.
    EXPECT_EQ(sys.load(1, 0x1000, 8), 5u);
    EXPECT_NE(sys.cache(1).state(0x1000), CoherenceState::invalid);
    // Processor 0 relocates: the unforwarded write is a coherent
    // store, so processor 1's copy is invalidated.
    sys.relocate(0, 0x1000, 0x5000, 1);
    EXPECT_EQ(sys.cache(1).state(0x1000), CoherenceState::invalid);
    // Processor 1's next access through the old pointer forwards and
    // sees the current value.
    EXPECT_EQ(sys.load(1, 0x1000, 8), 5u);
}

TEST(MpSystem, ChainOfRelocations)
{
    MpSystem sys;
    sys.store(0, 0x1000, 8, 11);
    sys.relocate(0, 0x1000, 0x2000, 1);
    sys.relocate(1, 0x1000, 0x3000, 1); // appends at chain end
    EXPECT_EQ(sys.load(2, 0x1000, 8), 11u);
    EXPECT_EQ(sys.load(2, 0x2000, 8), 11u);
    EXPECT_EQ(sys.load(2, 0x3000, 8), 11u);
}

TEST(MpSystem, CycleDetected)
{
    MpSystem sys;
    sys.mem().unforwardedWrite(0x1000, 0x2000, true);
    sys.mem().unforwardedWrite(0x2000, 0x1000, true);
    EXPECT_THROW(sys.load(0, 0x1000, 8), ForwardingCycleError);
}

TEST(MpSystem, SeparateToLinesGivesDistinctLines)
{
    MpSystem sys;
    std::vector<Addr> items;
    for (unsigned i = 0; i < 4; ++i) {
        items.push_back(0x1000 + i * 16);
        sys.store(0, items[i], 8, i);
    }
    const auto homes = separateToLines(sys, 0, items, 2, 0x40000);
    ASSERT_EQ(homes.size(), 4u);
    const unsigned line = sys.config().line_bytes;
    for (unsigned i = 0; i < 4; ++i) {
        for (unsigned j = i + 1; j < 4; ++j)
            EXPECT_NE(homes[i] / line, homes[j] / line);
        EXPECT_EQ(sys.load(1, items[i], 8), i); // stale reads OK
        EXPECT_EQ(sys.load(1, homes[i], 8), i);
    }
}

TEST(MpSystem, FalseSharingRepairCutsInvalidations)
{
    // The headline property, in miniature.
    auto hammer = [](bool separate) {
        MpSystem sys;
        std::vector<Addr> recs;
        for (unsigned p = 0; p < 4; ++p) {
            recs.push_back(0x1000 + p * 16);
            sys.store(0, recs[p], 8, 0);
        }
        if (separate)
            separateToLines(sys, 0, recs, 2, 0x40000);
        for (unsigned it = 0; it < 500; ++it) {
            for (unsigned p = 0; p < 4; ++p) {
                const std::uint64_t v = sys.load(p, recs[p], 8);
                sys.store(p, recs[p], 8, v + 1);
            }
        }
        return sys.bus().stats().invalidations;
    };
    EXPECT_LT(hammer(true), hammer(false) / 4);
}

TEST(MpSystemDeathTest, BadCpuRejected)
{
    MpSystem sys;
    EXPECT_DEATH(sys.load(99, 0x1000, 8), "bad cpu");
}

} // namespace
} // namespace memfwd
