/** @file
 * Property tests for the multiprocessor: random interleavings of
 * loads, stores, and relocations from multiple processors checked
 * against a flat reference model (sequential-consistency functional
 * semantics — our cores interleave one operation at a time).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "coherence/mp_system.hh"

namespace memfwd
{
namespace
{

class MpRandomOps : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MpRandomOps, MatchesReferenceModel)
{
    Rng rng(GetParam());
    MpConfig cfg;
    cfg.processors = 4;
    MpSystem sys(cfg);

    constexpr unsigned n_objects = 10;
    std::vector<std::vector<Addr>> history(n_objects);
    std::vector<std::uint64_t> reference(n_objects, 0);
    Addr next_fresh = 0x800000;

    for (unsigned k = 0; k < n_objects; ++k) {
        const Addr a = 0x10000 + k * 0x1000;
        history[k].push_back(a);
        sys.store(0, a, 8, 0);
    }

    for (unsigned op = 0; op < 400; ++op) {
        const unsigned cpu = static_cast<unsigned>(rng.below(4));
        const unsigned k = static_cast<unsigned>(rng.below(n_objects));
        auto &hist = history[k];
        const Addr via = hist[rng.below(hist.size())];

        switch (rng.below(4)) {
          case 0: {
            const std::uint64_t v = rng.next();
            sys.store(cpu, via, 8, v);
            reference[k] = v;
            break;
          }
          case 1:
            EXPECT_EQ(sys.load(cpu, via, 8), reference[k])
                << "cpu " << cpu << " object " << k;
            break;
          case 2: { // relocate from the current location
            sys.relocate(cpu, hist.back(), next_fresh, 1);
            hist.push_back(next_fresh);
            next_fresh += 0x1000;
            break;
          }
          case 3: // pure compute progress on one core
            sys.compute(cpu, rng.below(20));
            break;
        }
    }

    // Every processor sees every object's current value through every
    // historical pointer.
    for (unsigned k = 0; k < n_objects; ++k) {
        for (Addr via : history[k]) {
            for (unsigned cpu = 0; cpu < 4; ++cpu)
                EXPECT_EQ(sys.load(cpu, via, 8), reference[k]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpRandomOps,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST(MpInvariants, AtMostOneModifiedCopyEver)
{
    Rng rng(99);
    MpConfig cfg;
    cfg.processors = 3;
    MpSystem sys(cfg);

    const Addr addrs[] = {0x10000, 0x10040, 0x20000};
    for (unsigned op = 0; op < 300; ++op) {
        const unsigned cpu = static_cast<unsigned>(rng.below(3));
        const Addr a = addrs[rng.below(3)];
        if (rng.chance(0.5))
            sys.store(cpu, a, 8, op);
        else
            sys.load(cpu, a, 8);

        for (Addr check : addrs) {
            unsigned modified = 0;
            for (unsigned p = 0; p < 3; ++p) {
                modified += sys.cache(p).state(check) ==
                            CoherenceState::modified;
            }
            EXPECT_LE(modified, 1u);
        }
    }
}

TEST(MpInvariants, ClocksMonotonePerCpu)
{
    Rng rng(7);
    MpSystem sys;
    std::vector<Cycles> last(sys.config().processors, 0);
    for (unsigned op = 0; op < 500; ++op) {
        const unsigned cpu = static_cast<unsigned>(
            rng.below(sys.config().processors));
        if (rng.chance(0.5))
            sys.load(cpu, 0x10000 + rng.below(64) * 64, 8);
        else
            sys.store(cpu, 0x10000 + rng.below(64) * 64, 8, op);
        EXPECT_GE(sys.clock(cpu), last[cpu]);
        last[cpu] = sys.clock(cpu);
    }
}

} // namespace
} // namespace memfwd
