/** @file Unit tests for the MSI coherent cache and snoop bus. */

#include <gtest/gtest.h>

#include "coherence/coherent_cache.hh"
#include "coherence/snoop_bus.hh"

namespace memfwd
{
namespace
{

struct Duo
{
    SnoopBus bus;
    CoherentCache a{16 * 1024, 2, 64, bus};
    CoherentCache b{16 * 1024, 2, 64, bus};
};

TEST(CoherentCache, LoadMissInstallsShared)
{
    Duo d;
    d.a.load(0x1000, 0);
    EXPECT_EQ(d.a.state(0x1000), CoherenceState::shared);
    EXPECT_EQ(d.b.state(0x1000), CoherenceState::invalid);
}

TEST(CoherentCache, StoreMissInstallsModified)
{
    Duo d;
    d.a.store(0x1000, 0);
    EXPECT_EQ(d.a.state(0x1000), CoherenceState::modified);
}

TEST(CoherentCache, StoreInvalidatesPeerCopies)
{
    Duo d;
    d.a.load(0x1000, 0);
    d.b.load(0x1000, 0);
    EXPECT_EQ(d.b.state(0x1000), CoherenceState::shared);

    d.a.store(0x1000, 10); // S -> M upgrade
    EXPECT_EQ(d.a.state(0x1000), CoherenceState::modified);
    EXPECT_EQ(d.b.state(0x1000), CoherenceState::invalid);
    EXPECT_EQ(d.bus.stats().upgrades, 1u);
    EXPECT_EQ(d.bus.stats().invalidations, 1u);
    EXPECT_EQ(d.b.stats().invalidations_taken, 1u);
}

TEST(CoherentCache, PeerReadDowngradesModified)
{
    Duo d;
    d.a.store(0x1000, 0);
    d.b.load(0x1000, 50);
    EXPECT_EQ(d.a.state(0x1000), CoherenceState::shared);
    EXPECT_EQ(d.b.state(0x1000), CoherenceState::shared);
    EXPECT_EQ(d.bus.stats().transfers, 1u); // cache-to-cache supply
}

TEST(CoherentCache, PeerSupplyFasterThanMemory)
{
    Duo d;
    d.a.store(0x1000, 0);
    const Cycles supplied = d.b.load(0x1000, 100) - 100;
    const Cycles from_mem = d.b.load(0x9000, 200) - 200;
    EXPECT_LT(supplied, from_mem);
}

TEST(CoherentCache, WriteMissInvalidatesEveryPeer)
{
    SnoopBus bus;
    CoherentCache a(16 * 1024, 2, 64, bus);
    CoherentCache b(16 * 1024, 2, 64, bus);
    CoherentCache c(16 * 1024, 2, 64, bus);
    a.load(0x2000, 0);
    b.load(0x2000, 0);
    c.store(0x2000, 0);
    EXPECT_EQ(a.state(0x2000), CoherenceState::invalid);
    EXPECT_EQ(b.state(0x2000), CoherenceState::invalid);
    EXPECT_EQ(c.state(0x2000), CoherenceState::modified);
    EXPECT_EQ(bus.stats().invalidations, 2u);
}

TEST(CoherentCache, SingleWriterInvariant)
{
    // At most one Modified copy at any time, across any op sequence.
    Duo d;
    const Addr addrs[] = {0x1000, 0x1040, 0x2000};
    unsigned step = 0;
    for (Addr x : addrs) {
        for (int i = 0; i < 4; ++i) {
            (i % 2 ? d.a : d.b).store(x, step++);
            (i % 2 ? d.b : d.a).load(x, step++);
            unsigned modified = 0;
            modified += d.a.state(x) == CoherenceState::modified;
            modified += d.b.state(x) == CoherenceState::modified;
            EXPECT_LE(modified, 1u);
        }
    }
}

TEST(CoherentCache, FalseSharingPingPong)
{
    // Two processors writing DIFFERENT words of the SAME line must
    // ping-pong; different lines must not.
    Duo d;
    for (int i = 0; i < 100; ++i) {
        d.a.store(0x1000, i);      // word 0 of the line
        d.b.store(0x1008, i);      // word 1 of the same line
    }
    const std::uint64_t same_line = d.bus.stats().invalidations;

    Duo e;
    for (int i = 0; i < 100; ++i) {
        e.a.store(0x1000, i);
        e.b.store(0x2000, i);      // different line
    }
    const std::uint64_t diff_line = e.bus.stats().invalidations;

    EXPECT_GE(same_line, 150u); // nearly every write invalidates
    EXPECT_LE(diff_line, 2u);
}

TEST(CoherentCacheDeathTest, BadGeometry)
{
    SnoopBus bus;
    EXPECT_DEATH(CoherentCache(1000, 3, 64, bus), "power of two");
}

} // namespace
} // namespace memfwd
