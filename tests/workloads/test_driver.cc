/** @file Unit tests for the experiment driver. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workloads/driver.hh"

namespace memfwd
{
namespace
{

RunConfig
tinyConfig(const std::string &wl)
{
    RunConfig cfg;
    cfg.workload = wl;
    cfg.params.scale = 0.05;
    return cfg;
}

TEST(Driver, CollectsConsistentMetrics)
{
    setVerbose(false);
    const RunResult r = runWorkload(tinyConfig("vis"));
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.loads, 0u);
    EXPECT_GT(r.stores, 0u);
    EXPECT_EQ(r.workload, "vis");
    // Slot accounting covers the run.
    EXPECT_GE(r.stalls.totalSlots(), r.instructions);
    // Busy slots == instructions graduated.
    EXPECT_EQ(r.stalls.busy, r.instructions);
}

TEST(Driver, MissCountsBoundedByLoads)
{
    setVerbose(false);
    const RunResult r = runWorkload(tinyConfig("mst"));
    EXPECT_LE(r.load_partial_misses + r.load_full_misses, r.loads);
    EXPECT_LE(r.store_misses, r.stores);
}

TEST(Driver, TrafficFlowsDownhill)
{
    setVerbose(false);
    const RunResult r = runWorkload(tinyConfig("health"));
    EXPECT_GT(r.l1_l2_bytes, 0u);
    EXPECT_GT(r.l2_mem_bytes, 0u);
}

TEST(Driver, ForwardedFractionsZeroWithoutOptimization)
{
    setVerbose(false);
    const RunResult r = runWorkload(tinyConfig("smv"));
    EXPECT_EQ(r.loads_forwarded, 0u);
    EXPECT_EQ(r.stores_forwarded, 0u);
    EXPECT_EQ(r.loadForwardedFraction(), 0.0);
}

TEST(Driver, SmvForwardsUnderLayoutOpt)
{
    setVerbose(false);
    RunConfig cfg = tinyConfig("smv");
    cfg.variant.layout_opt = true;
    const RunResult r = runWorkload(cfg);
    EXPECT_GT(r.loads_forwarded, 0u);
    EXPECT_GT(r.stores_forwarded, 0u);
    EXPECT_GT(r.loadForwardedFraction(), 0.0);
    EXPECT_LT(r.loadForwardedFraction(), 1.0);
}

TEST(Driver, PrefetchRunsIssuePrefetches)
{
    setVerbose(false);
    RunConfig cfg = tinyConfig("vis");
    cfg.variant.prefetch = true;
    cfg.variant.prefetch_block = 2;
    const RunResult r = runWorkload(cfg);
    EXPECT_GT(r.prefetches_issued, 0u);
}

TEST(Driver, BestPrefetchPicksFastest)
{
    setVerbose(false);
    RunConfig cfg = tinyConfig("vis");
    cfg.variant.layout_opt = true;
    const RunResult best = runBestPrefetch(cfg, {1, 2, 4});
    RunResult worst;
    bool first = true;
    for (unsigned b : {1u, 2u, 4u}) {
        cfg.variant.prefetch = true;
        cfg.variant.prefetch_block = b;
        const RunResult r = runWorkload(cfg);
        if (first || r.cycles > worst.cycles) {
            worst = r;
            first = false;
        }
    }
    EXPECT_LE(best.cycles, worst.cycles);
    EXPECT_TRUE(best.variant.prefetch);
}

TEST(Driver, AverageLatenciesAreSane)
{
    setVerbose(false);
    const RunResult r = runWorkload(tinyConfig("eqntott"));
    EXPECT_GE(r.avg_load_cycles, 1.0);
    EXPECT_LT(r.avg_load_cycles, 200.0);
    EXPECT_GE(r.avg_store_cycles, 1.0);
}

} // namespace
} // namespace memfwd
