/** @file
 * Workload correctness tests: the central property is the paper's own
 * safety claim — layout optimization via memory forwarding NEVER
 * changes program results.  Every workload's N and L variants (and the
 * prefetch variants, which must also be semantics-preserving) compute
 * identical checksums.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "runtime/machine.hh"
#include "workloads/workload.hh"

namespace memfwd
{
namespace
{

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setVerbose(false); }
};
const auto *quiet_env =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.scale = 0.05; // keep unit tests fast
    return p;
}

std::uint64_t
runVariant(const std::string &name, bool layout_opt, bool prefetch,
           unsigned line_bytes = 32)
{
    MachineConfig mc;
    mc.hierarchy.setLineBytes(line_bytes);
    Machine machine(mc);
    auto w = makeWorkload(name, tinyParams());
    WorkloadVariant v;
    v.layout_opt = layout_opt;
    v.prefetch = prefetch;
    v.prefetch_block = 2;
    w->run(machine, v);
    return w->checksum();
}

TEST(Workloads, RegistryListsAllEight)
{
    EXPECT_EQ(workloadNames().size(), 8u);
    for (const auto &n : workloadNames())
        EXPECT_NE(makeWorkload(n, tinyParams()), nullptr);
}

TEST(Workloads, Figure5SetExcludesSmv)
{
    EXPECT_EQ(figure5Workloads().size(), 7u);
    for (const auto &n : figure5Workloads())
        EXPECT_NE(n, "smv");
}

TEST(Workloads, MetadataNonEmpty)
{
    for (const auto &n : workloadNames()) {
        auto w = makeWorkload(n, tinyParams());
        EXPECT_EQ(w->name(), n);
        EXPECT_FALSE(w->description().empty());
        EXPECT_FALSE(w->optimization().empty());
        EXPECT_EQ(w->checksum(), 0u) << "checksum before run";
    }
}

TEST(WorkloadsDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(makeWorkload("nonesuch", tinyParams()),
                ::testing::ExitedWithCode(1), "unknown workload");
}

// The headline safety property, per workload and line size.
class LayoutSafety
    : public ::testing::TestWithParam<std::tuple<std::string, unsigned>>
{
};

TEST_P(LayoutSafety, OptimizedChecksumMatchesBaseline)
{
    const auto &[name, line] = GetParam();
    EXPECT_EQ(runVariant(name, false, false, line),
              runVariant(name, true, false, line));
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAllLines, LayoutSafety,
    ::testing::Combine(::testing::Values("bh", "compress", "eqntott",
                                         "health", "mst", "radiosity",
                                         "smv", "vis"),
                       ::testing::Values(32u, 64u, 128u)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               std::to_string(std::get<1>(info.param)) + "B";
    });

// Prefetching must also be purely a hint: no semantic effect.
class PrefetchSafety : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PrefetchSafety, PrefetchVariantsMatch)
{
    const std::string name = GetParam();
    const auto base = runVariant(name, false, false);
    EXPECT_EQ(runVariant(name, false, true), base);
    EXPECT_EQ(runVariant(name, true, true), base);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PrefetchSafety,
                         ::testing::Values("bh", "compress", "eqntott",
                                           "health", "mst", "radiosity",
                                           "smv", "vis"));

// Determinism: same seed, same result; different seed, different work.
TEST(Workloads, DeterministicAcrossRuns)
{
    for (const auto &n : workloadNames()) {
        EXPECT_EQ(runVariant(n, false, false),
                  runVariant(n, false, false))
            << n;
    }
}

TEST(Workloads, SeedChangesResult)
{
    MachineConfig mc;
    WorkloadParams p = tinyParams();
    unsigned differs = 0;
    for (const auto &n : workloadNames()) {
        Machine m1(mc), m2(mc);
        auto w1 = makeWorkload(n, p);
        WorkloadParams p2 = p;
        p2.seed = 999;
        auto w2 = makeWorkload(n, p2);
        WorkloadVariant v;
        w1->run(m1, v);
        w2->run(m2, v);
        differs += (w1->checksum() != w2->checksum());
    }
    EXPECT_GE(differs, 7u); // virtually all workloads seed-sensitive
}

// The L variants must actually relocate something.  Health's
// churn-triggered linearization needs enough simulated steps to fire,
// so it runs at a larger scale than the rest.
TEST(Workloads, OptimizedVariantsReportSpaceOverhead)
{
    for (const auto &n : workloadNames()) {
        MachineConfig mc;
        Machine machine(mc);
        WorkloadParams p = tinyParams();
        if (n == "health")
            p.scale = 0.7;
        auto w = makeWorkload(n, p);
        WorkloadVariant v;
        v.layout_opt = true;
        w->run(machine, v);
        EXPECT_GT(w->spaceOverheadBytes(), 0u) << n;
        EXPECT_GT(machine.mem().fbitCount(), 0u) << n;
    }
}

// And the N variants must not.
TEST(Workloads, BaselineVariantsHaveNoOverhead)
{
    for (const auto &n : workloadNames()) {
        MachineConfig mc;
        Machine machine(mc);
        auto w = makeWorkload(n, tinyParams());
        w->run(machine, WorkloadVariant{});
        EXPECT_EQ(w->spaceOverheadBytes(), 0u) << n;
        EXPECT_EQ(machine.forwarding().stats().walks, 0u) << n;
    }
}

} // namespace
} // namespace memfwd
