/** @file
 * Native-oracle tests: the simulated workloads re-derive real
 * algorithmic results.  For workloads with a crisp functional output,
 * an independent native C++ implementation computes the same answer
 * from the same deterministic inputs, and the workload checksum must
 * embed it.  This validates that the entire stack — allocator,
 * forwarding, relocation, subword access — executes the algorithms
 * faithfully, not merely deterministically.
 */

#include <gtest/gtest.h>

#include <limits>
#include <queue>
#include <vector>

#include "common/logging.hh"
#include "runtime/machine.hh"
#include "workloads/workload.hh"
#include "workloads/workload_util.hh"

namespace memfwd
{
namespace
{

std::uint64_t
runChecksum(const std::string &name, bool layout_opt, double scale)
{
    setVerbose(false);
    Machine m;
    WorkloadParams p;
    p.scale = scale;
    auto w = makeWorkload(name, p);
    WorkloadVariant v;
    v.layout_opt = layout_opt;
    w->run(m, v);
    return w->checksum();
}

// ---------------------------------------------------------------------
// MST oracle: native Prim over the identical deterministically
// generated graph.  The workload's checksum IS the MST weight.
// ---------------------------------------------------------------------

std::uint64_t
nativeMstWeight(unsigned n_vertices, unsigned degree,
                std::uint64_t seed)
{
    // Rebuild the same undirected weighted graph the workload builds.
    std::vector<std::vector<std::pair<unsigned, std::uint64_t>>> adj(
        n_vertices);
    for (unsigned i = 1; i < n_vertices; ++i) {
        for (unsigned d = 0; d < degree; ++d) {
            const unsigned j = static_cast<unsigned>(
                mix64(seed, (std::uint64_t(i) << 16) | d) % i);
            const std::uint64_t w =
                1 + mix64(std::uint64_t(i) * 131071 + j) % 4096;
            adj[i].emplace_back(j, w);
            adj[j].emplace_back(i, w);
        }
    }
    // Plain Prim.  NOTE: the workload keeps only ONE edge per
    // (vertex, neighbour) pair in its hash table — the most recently
    // inserted — so the oracle must deduplicate the same way: later
    // insertions shadow earlier ones (the hash chain is prepended and
    // lookups stop at the first match).
    std::vector<std::vector<std::pair<unsigned, std::uint64_t>>> dedup(
        n_vertices);
    for (unsigned v = 0; v < n_vertices; ++v) {
        std::vector<std::int64_t> seen(n_vertices, -1);
        // Scan in REVERSE insertion order: the last inserted wins.
        for (auto it = adj[v].rbegin(); it != adj[v].rend(); ++it) {
            if (seen[it->first] < 0) {
                seen[it->first] = static_cast<std::int64_t>(it->second);
                dedup[v].emplace_back(it->first, it->second);
            }
        }
    }

    constexpr std::uint64_t inf =
        std::numeric_limits<std::uint64_t>::max();
    std::vector<std::uint64_t> dist(n_vertices, inf);
    std::vector<bool> in_tree(n_vertices, false);
    in_tree[0] = true;
    unsigned last = 0;
    std::uint64_t total = 0;
    for (unsigned round = 1; round < n_vertices; ++round) {
        for (const auto &[to, w] : dedup[last]) {
            if (!in_tree[to] && w < dist[to])
                dist[to] = w;
        }
        unsigned best = 0;
        std::uint64_t best_d = inf;
        for (unsigned v = 0; v < n_vertices; ++v) {
            if (!in_tree[v] && dist[v] < best_d) {
                best_d = dist[v];
                best = v;
            }
        }
        total += best_d;
        in_tree[best] = true;
        last = best;
    }
    return total;
}

TEST(Oracles, MstWeightMatchesNativePrim)
{
    // scale 0.1 -> n_vertices = max(16, 102) = 102, degree 8, seed 42.
    const std::uint64_t simulated = runChecksum("mst", false, 0.1);
    const std::uint64_t native = nativeMstWeight(102, 8, 42);
    EXPECT_EQ(simulated, native);
    // And the layout-optimized run computes the same real MST.
    EXPECT_EQ(runChecksum("mst", true, 0.1), native);
}

// ---------------------------------------------------------------------
// Compress oracle: native LZW over the identical symbol stream.
// ---------------------------------------------------------------------

std::uint64_t
nativeCompressChecksum(unsigned hsize, unsigned n_symbols,
                       unsigned reset_interval, std::uint64_t seed)
{
    std::vector<std::uint64_t> htab(hsize, ~std::uint64_t(0));
    std::vector<std::uint16_t> codetab(hsize, 0);
    std::uint64_t free_ent = 257;
    std::uint64_t ent = 0;
    std::uint64_t checksum = 0;

    for (unsigned s = 0; s < n_symbols; ++s) {
        const std::uint64_t c =
            mix64(seed, (std::uint64_t(s) >> 3)) % 61;
        const std::uint64_t fcode = (c << 16) | ent;
        std::uint64_t i = ((c << 8) ^ ent) % hsize;

        bool found = false;
        const std::uint64_t disp = (i == 0) ? 1 : hsize - i;
        for (unsigned probes = 0; probes < 8; ++probes) {
            if (htab[i] == fcode) {
                ent = codetab[i];
                found = true;
                break;
            }
            if (htab[i] == ~std::uint64_t(0))
                break;
            i = (i + disp) % hsize;
        }
        if (!found) {
            checksum += ent * 2654435761u + c;
            codetab[i] = static_cast<std::uint16_t>(free_ent & 0xffff);
            htab[i] = fcode;
            ++free_ent;
            ent = c;
        }
        if (s != 0 && s % reset_interval == 0) {
            std::fill(htab.begin(), htab.end(), ~std::uint64_t(0));
            free_ent = 257;
        }
    }
    return checksum + free_ent;
}

TEST(Oracles, CompressMatchesNativeLzw)
{
    // scale 0.1: hsize = max(1024, 6900)|1 = 6901, symbols = 120000.
    const std::uint64_t native =
        nativeCompressChecksum(6901, 120000, 30000, 42);
    EXPECT_EQ(runChecksum("compress", false, 0.1), native);
    EXPECT_EQ(runChecksum("compress", true, 0.1), native);
}

// ---------------------------------------------------------------------
// Eqntott oracle: native pairwise comparisons over the same PTERMs.
// ---------------------------------------------------------------------

std::uint64_t
nativeEqntottChecksum(unsigned n_pterms, unsigned n_vars,
                      unsigned n_sweeps, std::uint64_t seed)
{
    std::vector<std::vector<std::uint8_t>> arrays(
        n_pterms, std::vector<std::uint8_t>(n_vars));
    for (unsigned i = 0; i < n_pterms; ++i) {
        for (unsigned v = 0; v < n_vars; ++v) {
            std::uint64_t val = mix64(seed, v) % 3;
            if (hashChance(mix64(i, v ^ seed), 50, 1000))
                val = (val + 1) % 3;
            arrays[i][v] = static_cast<std::uint8_t>(val);
        }
    }
    std::uint64_t checksum = 0;
    for (unsigned sweep = 0; sweep < n_sweeps; ++sweep) {
        for (unsigned i = 1; i < n_pterms; ++i) {
            int cmp = 0;
            for (unsigned v = 0; v < n_vars; ++v) {
                if (arrays[i - 1][v] != arrays[i][v]) {
                    cmp = arrays[i - 1][v] < arrays[i][v] ? -1 : 1;
                    break;
                }
            }
            checksum +=
                static_cast<std::uint64_t>(cmp + 2) * 31 + sweep;
        }
    }
    return checksum;
}

TEST(Oracles, EqntottMatchesNativeCmppt)
{
    // scale 0.1: n_pterms = max(64, 614) = 614, n_vars 24, sweeps 16.
    const std::uint64_t native =
        nativeEqntottChecksum(614, 24, 16, 42);
    EXPECT_EQ(runChecksum("eqntott", false, 0.1), native);
    EXPECT_EQ(runChecksum("eqntott", true, 0.1), native);
}

} // namespace
} // namespace memfwd
