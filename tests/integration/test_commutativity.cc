/**
 * @file
 * Commutativity differential: the empirical check behind every COMMUTE
 * verdict the InterferenceAnalyzer hands out.
 *
 * For each plan pair the static pass calls COMMUTE, the pair is
 * executed three ways on identically seeded heaps — A then B, B then
 * A, and interleaved at transaction granularity (plan B's relocation
 * transactions land between plan A's) — and the three final heaps must
 * be canonically bit-identical: forwarded words compared by where they
 * resolve, data words byte-for-byte.  A RaceObserver watches the
 * interleaved run through per-plan lanes and must see zero races.
 *
 * Pair sources: 140 randomized plan pairs (commute-biased; >= 100 must
 * actually commute so the differential has teeth) and real plans
 * harvested from all nine workloads via AnalysisGate::setRetainPlans.
 * A seeded CONFLICT pair closes the loop: the static pass must refuse
 * it (E101 + ScheduleRefused) and the dynamic pass must flag the
 * overlap when it is executed anyway.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/gate.hh"
#include "analysis/interference.hh"
#include "analysis/race_observer.hh"
#include "analysis/scheduler.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "mem/tagged_memory.hh"
#include "runtime/machine.hh"
#include "runtime/relocation.hh"
#include "workloads/driver.hh"
#include "workloads/workload.hh"

namespace memfwd
{
namespace
{

/** Functional chain resolution on raw state (no timing, no stats). */
Addr
resolveFinalWord(const TaggedMemory &mem, Addr word)
{
    unsigned hops = 0;
    while (mem.fbit(word)) {
        word = wordAlign(mem.rawReadWord(word));
        if (++hops > 1u << 20)
            return 0;
    }
    return word;
}

/** Canonical heap equality: chain shape out, resolution + payload in. */
bool
canonicalHeapsEqual(const TaggedMemory &a, const TaggedMemory &b,
                    std::string &why)
{
    const std::vector<Addr> pages = a.mappedPageBases();
    if (pages != b.mappedPageBases()) {
        why = "materialized pages differ";
        return false;
    }
    if (a.fbitCount() != b.fbitCount()) {
        why = "forwarding-bit counts differ";
        return false;
    }
    for (const Addr base : pages) {
        for (unsigned w = 0; w < TaggedMemory::pageWords; ++w) {
            const Addr addr = base + Addr(w) * wordBytes;
            if (a.fbit(addr) != b.fbit(addr)) {
                why = strfmt("fbit differs at %#llx",
                             static_cast<unsigned long long>(addr));
                return false;
            }
            const Word va = a.fbit(addr) ? resolveFinalWord(a, addr)
                                         : a.rawReadWord(addr);
            const Word vb = b.fbit(addr) ? resolveFinalWord(b, addr)
                                         : b.rawReadWord(addr);
            if (va != vb) {
                why = strfmt("canonical word differs at %#llx",
                             static_cast<unsigned long long>(addr));
                return false;
            }
        }
    }
    return true;
}

/** Deterministic payload for a source word (seed-mixed). */
Word
seedValue(Addr addr, std::uint64_t seed)
{
    return (addr * 0x9e3779b97f4a7c15ull) ^ seed;
}

/** Seed every source word of both plans with deterministic payload. */
void
seedHeap(Machine &m, const RelocationPlan &a, const RelocationPlan &b,
         std::uint64_t seed)
{
    for (const RelocationPlan *p : {&a, &b}) {
        for (const PlanMove &mv : p->moves()) {
            for (unsigned k = 0; k < mv.n_words; ++k) {
                const Addr addr = mv.src + Addr(k) * wordBytes;
                m.access(Access::store(addr, wordBytes,
                                       seedValue(addr, seed)));
            }
        }
    }
}

/** Execute one plan: each move is one relocation transaction. */
void
execMoves(Machine &m, const RelocationPlan &plan, std::size_t from = 0,
          std::size_t to = ~std::size_t(0))
{
    const std::vector<PlanMove> &moves = plan.moves();
    for (std::size_t i = from; i < moves.size() && i < to; ++i)
        relocate(m, moves[i].src, moves[i].dst, moves[i].n_words);
}

/** Serial execution: @p x fully commits, then @p y. */
std::unique_ptr<Machine>
runSerial(const RelocationPlan &x, const RelocationPlan &y,
          std::uint64_t seed)
{
    auto m = std::make_unique<Machine>(MachineConfig{});
    AnalysisGate gate(AnalyzeMode::plan);
    m->setAnalysisGate(&gate);
    seedHeap(*m, x, y, seed);
    {
        PlanScope scope(&gate, x);
        execMoves(*m, x);
    }
    {
        PlanScope scope(&gate, y);
        execMoves(*m, y);
    }
    m->setAnalysisGate(nullptr); // gate dies with this frame
    return m;
}

/** Forwards every trace event to the observer on a switchable lane. */
class SwitchSink : public obs::TraceSink
{
  public:
    explicit SwitchSink(RaceObserver &observer) : observer_(observer) {}

    void emit(const obs::TraceEvent &event) override
    {
        observer_.observe(lane, event);
    }

    unsigned lane = 0;

  private:
    RaceObserver &observer_;
};

/**
 * Interleaved execution at transaction granularity with both plans
 * admitted concurrently: A opens and runs its first transaction, B
 * opens, runs completely, releases, then A finishes.  Every
 * transaction carries its own plan's ticket (the open-plan stack is
 * properly nested) and the observer sees A on lane 0, B on lane 1,
 * with no sync edge — any overlap is a race.
 */
std::unique_ptr<Machine>
runInterleaved(const RelocationPlan &a, const RelocationPlan &b,
               std::uint64_t seed, RaceObserver &observer,
               bool keep_going = false)
{
    auto m = std::make_unique<Machine>(MachineConfig{});
    AnalysisGate gate(AnalyzeMode::plan);
    gate.setKeepGoing(keep_going);
    PlanScheduler sched;
    gate.setScheduler(&sched);
    m->setAnalysisGate(&gate);
    seedHeap(*m, a, b, seed);

    SwitchSink sink(observer);
    m->tracer().addSink(&sink);

    gate.submit(a);
    sink.lane = 0;
    execMoves(*m, a, 0, 1);
    {
        gate.submit(b); // pair checked against in-flight a
        sink.lane = 1;
        execMoves(*m, b);
        gate.planDone();
    }
    sink.lane = 0;
    execMoves(*m, a, 1);
    gate.planDone();

    m->tracer().removeSink(&sink);
    m->setAnalysisGate(nullptr);
    return m;
}

/** The three-way differential one COMMUTE pair must pass. */
void
expectPairCommutes(const RelocationPlan &a, const RelocationPlan &b,
                   std::uint64_t seed, const char *label)
{
    const std::unique_ptr<Machine> ab = runSerial(a, b, seed);
    const std::unique_ptr<Machine> ba = runSerial(b, a, seed);
    RaceObserver observer;
    const std::unique_ptr<Machine> il =
        runInterleaved(a, b, seed, observer);

    std::string why;
    EXPECT_TRUE(canonicalHeapsEqual(ab->mem(), ba->mem(), why))
        << label << ": A;B vs B;A: " << why;
    EXPECT_TRUE(canonicalHeapsEqual(ab->mem(), il->mem(), why))
        << label << ": A;B vs interleaved: " << why;

    EXPECT_TRUE(observer.races().empty())
        << label << ": dynamic race on a statically COMMUTE pair";
    EXPECT_TRUE(observer.falseCommutes().empty()) << label;
    EXPECT_GE(observer.transactions(),
              a.moves().size() + b.moves().size());
}

// ---------------------------------------------------------------------
// Randomized pairs, commute-biased.
// ---------------------------------------------------------------------

constexpr Addr slot_stride = 0x100; ///< fits 16-word objects with slack
constexpr unsigned slots_per_region = 32;

Addr
srcSlot(unsigned region, unsigned slot)
{
    return 0x00100000 + Addr(region) * 0x40000 +
           Addr(slot) * slot_stride;
}

Addr
dstSlot(unsigned region, unsigned slot)
{
    return 0x04000000 + Addr(region) * 0x40000 +
           Addr(slot) * slot_stride;
}

/** A random plan over distinct slots of one src/dst region pair. */
RelocationPlan
randomPlan(Rng &rng, const char *name, unsigned region)
{
    RelocationPlan p(name);
    p.assume(AliasAssumption::stale_pointers_possible);
    const unsigned n_moves = 1 + unsigned(rng.below(3));
    std::vector<bool> used(slots_per_region, false);
    for (unsigned i = 0; i < n_moves; ++i) {
        unsigned s = unsigned(rng.below(slots_per_region));
        while (used[s])
            s = (s + 1) % slots_per_region;
        used[s] = true;
        const unsigned n_words = 1 + unsigned(rng.below(8));
        p.move(srcSlot(region, s), dstSlot(region, s), n_words);
    }
    return p;
}

TEST(Commutativity, RandomizedCommutePairsAreOrderInsensitive)
{
    setVerbose(false);
    const InterferenceAnalyzer analyzer;
    unsigned commute_runs = 0;
    constexpr unsigned total_pairs = 140;

    for (unsigned pair = 0; pair < total_pairs; ++pair) {
        Rng rng(testSeed(0xc0441700u + pair));
        // Bias: ~3/4 of pairs draw from disjoint regions (guaranteed
        // commute); the rest share a region and may interfere.
        const unsigned region_a = 0;
        const unsigned region_b = rng.below(4) ? 1 : 0;
        const RelocationPlan a = randomPlan(rng, "rand_a", region_a);
        const RelocationPlan b = randomPlan(rng, "rand_b", region_b);

        const PairFinding f = analyzer.analyzePair(a, b);
        if (f.verdict != InterferenceVerdict::commute)
            continue;
        expectPairCommutes(a, b, testSeed(0x5eed0000u + pair),
                           ("pair " + std::to_string(pair)).c_str());
        ++commute_runs;
    }
    // The differential must actually have run on a large sample.
    EXPECT_GE(commute_runs, 100u);
}

// ---------------------------------------------------------------------
// Real plans from all nine workloads.
// ---------------------------------------------------------------------

class WorkloadCommutativity
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadCommutativity, HarvestedCommutePairsAreOrderInsensitive)
{
    setVerbose(false);
    const std::string name = GetParam();

    // Harvest every plan the workload's layout passes emit.
    RunConfig cfg;
    cfg.workload = name;
    cfg.params.scale = 0.05;
    cfg.params.seed = testSeed(cfg.params.seed);
    cfg.variant.layout_opt = true;

    Machine machine(cfg.machine);
    AnalysisGate gate(AnalyzeMode::plan);
    gate.setKeepGoing(true);
    gate.setRetainPlans(true);
    machine.setAnalysisGate(&gate);
    makeWorkload(cfg.workload, cfg.params)->run(machine, cfg.variant);
    machine.setAnalysisGate(nullptr);
    const std::vector<RelocationPlan> &plans = gate.plans();

    // Replay adjacent COMMUTE pairs on synthetic heaps.  Caps keep the
    // suite fast: a handful of pairs per workload, none enormous.
    constexpr std::size_t max_pairs = 5;
    constexpr std::uint64_t max_pair_words = 4096;
    const InterferenceAnalyzer analyzer;
    std::size_t replayed = 0;
    for (std::size_t i = 0; i + 1 < plans.size() && replayed < max_pairs;
         ++i) {
        const RelocationPlan &a = plans[i];
        const RelocationPlan &b = plans[i + 1];
        if (a.moves().empty() || b.moves().empty())
            continue;
        if (a.totalWords() + b.totalWords() > max_pair_words)
            continue;
        if (analyzer.analyzePair(a, b).verdict !=
            InterferenceVerdict::commute)
            continue;
        expectPairCommutes(a, b, testSeed(0x3a7e0000u + unsigned(i)),
                           (name + " pair " + std::to_string(i)).c_str());
        ++replayed;
    }
    // Every workload that emits >= 2 plans must contribute pairs;
    // workloads without adjacent commuting plans legitimately skip.
    if (plans.size() >= 2 && replayed == 0) {
        std::size_t commuting = 0;
        for (std::size_t i = 0; i + 1 < plans.size(); ++i)
            commuting += analyzer.analyzePair(plans[i], plans[i + 1])
                             .verdict == InterferenceVerdict::commute;
        EXPECT_EQ(commuting, 0u)
            << name << ": commuting pairs existed but none replayed";
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadCommutativity,
                         ::testing::ValuesIn(extendedWorkloadNames()),
                         [](const auto &info) { return info.param; });

// ---------------------------------------------------------------------
// The seeded CONFLICT: static and dynamic passes must both catch it.
// ---------------------------------------------------------------------

TEST(Commutativity, SeededConflictCaughtStaticallyAndDynamically)
{
    setVerbose(false);
    // Both plans relocate the same source object: E101, the canonical
    // racing-chain-append conflict.
    RelocationPlan a("conflict_a");
    a.assume(AliasAssumption::stale_pointers_possible)
        .move(srcSlot(0, 0), dstSlot(0, 0), 4);
    RelocationPlan b("conflict_b");
    b.assume(AliasAssumption::stale_pointers_possible)
        .move(srcSlot(0, 0), dstSlot(1, 0), 4);

    // Static: the analyzer conflicts, the scheduler refuses admission.
    const PairFinding f = InterferenceAnalyzer().analyzePair(a, b);
    EXPECT_EQ(f.verdict, InterferenceVerdict::conflict);
    EXPECT_TRUE(f.hasCode(DiagCode::E101_shared_move_source));
    {
        AnalysisGate gate(AnalyzeMode::plan);
        PlanScheduler sched;
        gate.setScheduler(&sched);
        gate.submit(a);
        EXPECT_THROW(gate.submit(b), ScheduleRefused);
        gate.planDone();
    }

    // Dynamic: executed anyway (keep-going survey mode), the observer
    // sees the two lanes touch the same words with no ordering edge.
    RaceObserver observer;
    const std::unique_ptr<Machine> m = runInterleaved(
        a, b, testSeed(0xc04f11c7), observer, /*keep_going=*/true);
    EXPECT_FALSE(observer.races().empty())
        << "conflicting pair executed concurrently must race";
    // The static pass never vouched for this pair, so the race is not
    // a false COMMUTE — the two reports agree.
    EXPECT_TRUE(observer.falseCommutes().empty());
}

} // namespace
} // namespace memfwd
