/** @file
 * Cross-module integration tests: the full stack (workload -> runtime
 * -> forwarding -> caches -> CPU) reproducing the paper's headline
 * behaviours end to end, at reduced scale.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/traps.hh"
#include "runtime/list_linearize.hh"
#include "runtime/machine.hh"
#include "runtime/relocation.hh"
#include "runtime/sim_allocator.hh"
#include "workloads/driver.hh"

namespace memfwd
{
namespace
{

RunConfig
smallConfig(const std::string &wl, unsigned line)
{
    RunConfig cfg;
    cfg.workload = wl;
    cfg.params.scale = 0.3;
    cfg.machine.hierarchy.setLineBytes(line);
    return cfg;
}

// Figure 5's central claim: list linearization speeds up the list
// workloads, and the gain grows with line size.
TEST(EndToEnd, LinearizationSpeedsUpVisAt128B)
{
    setVerbose(false);
    RunConfig cfg = smallConfig("vis", 128);
    const RunResult n = runWorkload(cfg);
    cfg.variant.layout_opt = true;
    const RunResult l = runWorkload(cfg);
    EXPECT_LT(l.cycles, n.cycles);
    EXPECT_EQ(l.checksum, n.checksum);
    EXPECT_LT(l.load_partial_misses + l.load_full_misses,
              n.load_partial_misses + n.load_full_misses);
}

TEST(EndToEnd, SpeedupGrowsWithLineSize)
{
    setVerbose(false);
    double prev = 0;
    for (unsigned line : {32u, 64u, 128u}) {
        RunConfig cfg = smallConfig("vis", line);
        const RunResult n = runWorkload(cfg);
        cfg.variant.layout_opt = true;
        const RunResult l = runWorkload(cfg);
        const double speedup = double(n.cycles) / double(l.cycles);
        EXPECT_GT(speedup, prev);
        prev = speedup;
    }
}

// Figure 6(b): linearization reduces memory traffic.
TEST(EndToEnd, LinearizationSavesBandwidth)
{
    setVerbose(false);
    RunConfig cfg = smallConfig("vis", 64);
    const RunResult n = runWorkload(cfg);
    cfg.variant.layout_opt = true;
    const RunResult l = runWorkload(cfg);
    // Total bytes moved in the hierarchy: at reduced scale the
    // L2<->memory link alone can be noisy (the relocation pool's
    // one-time footprint), but the overall traffic must drop.
    EXPECT_LT(l.l1_l2_bytes + l.l2_mem_bytes,
              n.l1_l2_bytes + n.l2_mem_bytes);
}

// Section 5.4: in SMV, forwarding fires and costs performance relative
// to the perfect-forwarding bound.
TEST(EndToEnd, SmvForwardingOverheadVisible)
{
    setVerbose(false);
    RunConfig cfg = smallConfig("smv", 32);
    cfg.variant.layout_opt = true;
    const RunResult l = runWorkload(cfg);
    cfg.machine.forwarding.mode = ForwardingConfig::Mode::perfect;
    const RunResult perf = runWorkload(cfg);
    EXPECT_GT(l.cycles, perf.cycles);
    EXPECT_EQ(l.checksum, perf.checksum);
    EXPECT_GT(l.loads_forwarded, 0u);
    EXPECT_EQ(perf.loads_forwarded, 0u);
    // Figure 10(d): forwarding time is part of L's average load cost.
    EXPECT_GT(l.avg_load_forward_cycles, 0.0);
    EXPECT_EQ(perf.avg_load_forward_cycles, 0.0);
}

// Data dependence speculation (Section 3.2): violations are "almost
// never" — even in the forwarding-heavy workload.
TEST(EndToEnd, DependenceViolationsAreRare)
{
    setVerbose(false);
    RunConfig cfg = smallConfig("smv", 32);
    cfg.variant.layout_opt = true;
    const RunResult r = runWorkload(cfg);
    EXPECT_LT(r.lsq_violations, r.loads / 1000 + 10);
}

// Conservative mode (no speculation) must be slower on miss-heavy code.
TEST(EndToEnd, SpeculationBeatsConservative)
{
    setVerbose(false);
    RunConfig cfg = smallConfig("mst", 32);
    const RunResult spec = runWorkload(cfg);
    cfg.machine.cpu.dep_speculation = false;
    const RunResult cons = runWorkload(cfg);
    EXPECT_LT(spec.cycles, cons.cycles);
    EXPECT_EQ(spec.checksum, cons.checksum);
}

// Exception-style forwarding works and costs more than the hardware
// walk, but only on the forwarded references.
TEST(EndToEnd, ExceptionModeCostlierThanHardware)
{
    setVerbose(false);
    RunConfig cfg = smallConfig("smv", 32);
    cfg.variant.layout_opt = true;
    const RunResult hw = runWorkload(cfg);
    cfg.machine.forwarding.mode = ForwardingConfig::Mode::exception;
    const RunResult ex = runWorkload(cfg);
    EXPECT_GT(ex.cycles, hw.cycles);
    EXPECT_EQ(ex.checksum, hw.checksum);
}

// The user-level trap fixup of Section 3.2: rewriting stray pointers
// on the fly eliminates repeat forwarding.
TEST(EndToEnd, TrapFixupEliminatesRepeatForwarding)
{
    setVerbose(false);
    Machine m;
    SimAllocator alloc(m);
    RelocationPool pool(alloc, 1 << 16);

    // A one-node "list" referenced by a stale pointer slot in memory.
    const Addr node = alloc.alloc(16);
    m.access(Access::store(node + 8, 8, 1234));
    const Addr slot = alloc.alloc(8);
    m.access(Access::store(slot, 8, node));

    relocate(m, node, pool.take(16), 2);

    // Install the fixup handler: shift the stale pointer by the same
    // displacement the accessed word moved (application knowledge: the
    // object moved as one rigid block).
    m.forwarding().traps().install([&](const TrapInfo &info) {
        if (info.pointer_slot == 0)
            return TrapAction::resume;
        const std::uint64_t old_ptr = m.peek(info.pointer_slot, 8);
        const std::uint64_t delta = info.final_addr - info.initial_addr;
        m.poke(info.pointer_slot, 8, old_ptr + delta);
        return TrapAction::pointer_fixed;
    });

    // First dereference: forwards once and fixes the pointer.
    const AccessResult p1 = m.access(Access::load(
        static_cast<Addr>(m.access(Access::load(slot, 8)).value) + 8, 8, 0, 1, slot));
    EXPECT_EQ(p1.value, 1234u);
    EXPECT_EQ(p1.hops, 1u);
    EXPECT_EQ(m.forwarding().traps().pointersFixed(), 1u);

    // Second dereference through the slot: direct, no forwarding.
    const AccessResult p2 = m.access(Access::load(
        static_cast<Addr>(m.access(Access::load(slot, 8)).value) + 8, 8));
    EXPECT_EQ(p2.value, 1234u);
    EXPECT_EQ(p2.hops, 0u);
}

// Relocation + allocator + machine: a full object lifecycle.
TEST(EndToEnd, ObjectLifecycleWithRelocation)
{
    setVerbose(false);
    Machine m;
    SimAllocator alloc(m);

    const Addr obj = alloc.alloc(48);
    for (unsigned w = 0; w < 6; ++w)
        m.access(Access::store(obj + w * 8, 8, w * 11));

    const Addr home1 = alloc.alloc(48);
    relocate(m, obj, home1, 6);
    const Addr home2 = alloc.alloc(48);
    relocate(m, home1, home2, 6);

    // All three views agree.
    for (unsigned w = 0; w < 6; ++w) {
        EXPECT_EQ(m.access(Access::load(obj + w * 8, 8)).value, w * 11);
        EXPECT_EQ(m.access(Access::load(home1 + w * 8, 8)).value, w * 11);
        EXPECT_EQ(m.access(Access::load(home2 + w * 8, 8)).value, w * 11);
    }

    // Chain-aware free reclaims the whole family.
    alloc.free(obj);
    EXPECT_EQ(alloc.bytesLive(), 0u);
}

} // namespace
} // namespace memfwd
