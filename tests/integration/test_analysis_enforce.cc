/**
 * @file
 * Enforce-mode integration: every workload's layout-optimized variant
 * runs with the analysis gate cross-checking each raw access against
 * the plans the optimizers declared.  Every static verdict must hold
 * dynamically — zero violations — and the functional result must be
 * identical to an unanalyzed run.
 */

#include <gtest/gtest.h>

#include "analysis/gate.hh"
#include "runtime/machine.hh"
#include "workloads/driver.hh"
#include "workloads/workload.hh"

namespace memfwd
{
namespace
{

/** Small enough for CI, large enough that health's threshold-gated
 *  re-linearization actually relocates (scale >= 0.2). */
constexpr double test_scale = 0.2;

struct EnforcedRun
{
    GateStats stats;
    std::uint64_t checksum = 0;
};

EnforcedRun
runEnforced(const std::string &name)
{
    RunConfig cfg;
    cfg.workload = name;
    cfg.params.scale = test_scale;
    cfg.variant.layout_opt = true;

    Machine machine(cfg.machine);
    AnalysisGate gate(AnalyzeMode::enforce);
    machine.setAnalysisGate(&gate);

    auto workload = makeWorkload(cfg.workload, cfg.params);
    workload->run(machine, cfg.variant);
    return {gate.stats(), workload->checksum()};
}

std::uint64_t
runPlain(const std::string &name)
{
    RunConfig cfg;
    cfg.workload = name;
    cfg.params.scale = test_scale;
    cfg.variant.layout_opt = true;

    Machine machine(cfg.machine);
    auto workload = makeWorkload(cfg.workload, cfg.params);
    workload->run(machine, cfg.variant);
    return workload->checksum();
}

class AnalysisEnforce : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AnalysisEnforce, EveryStaticVerdictHoldsDynamically)
{
    const EnforcedRun run = runEnforced(GetParam());
    EXPECT_GT(run.stats.plans_submitted, 0u)
        << "the layout-optimized variant should emit plans";
    EXPECT_EQ(run.stats.plans_rejected, 0u);
    EXPECT_EQ(run.stats.diag_errors, 0u);
    EXPECT_EQ(run.stats.enforce_violations, 0u);
    EXPECT_GT(run.stats.enforce_checks, 0u);
}

TEST_P(AnalysisEnforce, EnforcementIsFunctionallyTransparent)
{
    EXPECT_EQ(runEnforced(GetParam()).checksum, runPlain(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, AnalysisEnforce,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

TEST(AnalysisEnforce, ProvenSitesAppearWhereOptimizersDeclareThem)
{
    // health linearizes lists and mst clusters/colors: both must prove
    // at least one declared fast-path site.
    for (const char *name : {"health", "mst"}) {
        const EnforcedRun run = runEnforced(name);
        EXPECT_GT(run.stats.sites_proven_unforwarded, 0u) << name;
    }
}

} // namespace
} // namespace memfwd
