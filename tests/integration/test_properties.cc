/** @file
 * Property-based tests: randomized operation sequences checked against
 * a reference model, plus machine-level invariants swept over
 * configurations with parameterized gtest.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "runtime/machine.hh"
#include "runtime/relocation.hh"
#include "runtime/sim_allocator.hh"
#include "workloads/driver.hh"

namespace memfwd
{
namespace
{

/**
 * Property: under any interleaving of stores, loads, and relocations,
 * a Machine with forwarding behaves exactly like a flat reference map
 * keyed by *logical* object identity.
 *
 * We model K objects of one word each.  The reference model tracks
 * each object's value; the machine tracks each object's address
 * history (every relocation leaves a forwarding trail).  Reads and
 * writes go through a RANDOM address from the object's history — i.e.
 * arbitrary stale pointers — and must always see the reference value.
 */
bool
pointersEqualViaChase(Machine &m, Addr a, Addr b)
{
    return chaseChain(m, a) == chaseChain(m, b);
}

class RandomOpsProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>>
{
};

/** The acceleration matrix the property holds under (0 = plain). */
MachineConfig
propertyConfig(int features)
{
    switch (features) {
      case 1:
        return MachineConfig{}.ftc();
      case 2:
        return MachineConfig{}.collapse();
      case 3:
        return MachineConfig{}.ftc().collapse();
      default:
        return MachineConfig{};
    }
}

TEST_P(RandomOpsProperty, StalePointersAlwaysSeeCurrentValues)
{
    setVerbose(false);
    const std::uint64_t seed = testSeed(std::get<0>(GetParam()));
    Rng rng(seed);
    Machine m(propertyConfig(std::get<1>(GetParam())));
    SimAllocator alloc(m, seed);

    constexpr unsigned n_objects = 12;
    std::vector<std::vector<Addr>> history(n_objects);
    std::vector<std::uint64_t> reference(n_objects, 0);

    for (unsigned k = 0; k < n_objects; ++k) {
        const Addr a = alloc.alloc(8, Placement::scattered);
        history[k].push_back(a);
        m.access(Access::store(a, 8, 0));
    }

    for (unsigned op = 0; op < 600; ++op) {
        const unsigned k =
            static_cast<unsigned>(rng.below(n_objects));
        auto &hist = history[k];
        const Addr via = hist[rng.below(hist.size())];

        switch (rng.below(4)) {
          case 0: { // store through a random historical pointer
            const std::uint64_t v = rng.next();
            m.access(Access::store(via, 8, v));
            reference[k] = v;
            break;
          }
          case 1: { // load through a random historical pointer
            EXPECT_EQ(m.access(Access::load(via, 8)).value, reference[k])
                << "object " << k << " via " << std::hex << via;
            break;
          }
          case 2: { // relocate from the CURRENT location
            const Addr tgt = alloc.alloc(8, Placement::scattered);
            relocate(m, hist.back(), tgt, 1);
            hist.push_back(tgt);
            break;
          }
          case 3: { // relocate via a STALE location (chain append)
            const Addr tgt = alloc.alloc(8, Placement::scattered);
            relocate(m, via, tgt, 1);
            hist.push_back(tgt);
            break;
          }
        }

        // Pointer comparisons across the history agree (Section 2.1).
        if (op % 50 == 0 && hist.size() >= 2) {
            EXPECT_TRUE(
                pointersEqualViaChase(m, hist.front(), hist.back()));
        }
    }

    // Final sweep: every historical pointer of every object reads the
    // reference value.
    for (unsigned k = 0; k < n_objects; ++k) {
        for (Addr via : history[k])
            EXPECT_EQ(m.access(Access::load(via, 8)).value, reference[k]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomOpsProperty,
    ::testing::Combine(
        ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u),
        ::testing::Values(0, 1, 2, 3)),
    [](const auto &info) {
        const int f = std::get<1>(info.param);
        const char *kind =
            f == 0 ? "plain"
                   : (f == 1 ? "ftc" : (f == 2 ? "collapse" : "both"));
        return std::string(kind) + "_s"
               + std::to_string(std::get<0>(info.param));
    });

/**
 * Property: timing is monotone — the cycle counter never goes
 * backwards across any operation mix.
 */
TEST(Properties, TimeIsMonotone)
{
    setVerbose(false);
    Machine m;
    Rng rng(7);
    Cycles last = 0;
    for (unsigned i = 0; i < 2000; ++i) {
        const Addr a = 0x1000 + rng.below(1 << 16) * 8;
        if (rng.chance(0.5))
            m.access(Access::load(a, 8));
        else
            m.access(Access::store(a, 8, i));
        EXPECT_GE(m.cycles(), last);
        last = m.cycles();
    }
}

/**
 * Property: the graduation-slot identity. busy slots == graduated
 * instructions, and total attributed slots fit in cycles * width.
 */
class SlotIdentitySweep
    : public ::testing::TestWithParam<std::tuple<std::string, unsigned>>
{
};

TEST_P(SlotIdentitySweep, SlotsAddUp)
{
    setVerbose(false);
    const auto &[wl, line] = GetParam();
    RunConfig cfg;
    cfg.workload = wl;
    cfg.params.scale = 0.05;
    cfg.machine.hierarchy.setLineBytes(line);
    cfg.variant.layout_opt = true;
    const RunResult r = runWorkload(cfg);

    EXPECT_EQ(r.stalls.busy, r.instructions);
    const std::uint64_t width = cfg.machine.cpu.width;
    EXPECT_LE(r.stalls.totalSlots(), (r.cycles + 1) * width);
    // The machine was actually exercised.
    EXPECT_GT(r.stalls.totalSlots(), r.instructions);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SlotIdentitySweep,
    ::testing::Combine(::testing::Values("vis", "smv", "compress"),
                       ::testing::Values(32u, 128u)));

/**
 * Property: cache-content agreement.  After any run, the functional
 * contents of simulated memory are independent of cache geometry.
 */
class GeometryIndependence : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(GeometryIndependence, ChecksumUnaffectedByCaches)
{
    setVerbose(false);
    RunConfig cfg;
    cfg.workload = "radiosity";
    cfg.params.scale = 0.05;
    cfg.variant.layout_opt = true;

    RunConfig alt = cfg;
    alt.machine.hierarchy.setLineBytes(GetParam());
    alt.machine.hierarchy.l1d.size_bytes = 8 * 1024;
    alt.machine.hierarchy.l1d.assoc = 1;

    EXPECT_EQ(runWorkload(cfg).checksum, runWorkload(alt).checksum);
}

INSTANTIATE_TEST_SUITE_P(Lines, GeometryIndependence,
                         ::testing::Values(32u, 64u, 128u, 256u));

/**
 * Property: hop accounting. total hops == sum over histogram of
 * (hops x count), and walks == count of nonzero-hop references.
 */
TEST(Properties, HopHistogramConsistent)
{
    setVerbose(false);
    Machine m;
    SimAllocator alloc(m, 3);
    Rng rng(3);

    std::vector<Addr> heads;
    for (int i = 0; i < 20; ++i) {
        Addr a = alloc.alloc(8, Placement::scattered);
        m.access(Access::store(a, 8, i));
        // Build chains of random length.
        const unsigned len = static_cast<unsigned>(rng.below(5));
        for (unsigned h = 0; h < len; ++h) {
            const Addr t = alloc.alloc(8, Placement::scattered);
            relocate(m, a, t, 1);
            a = t;
        }
        heads.push_back(a);
    }
    // heads are final locations; reload through originals is covered by
    // RandomOpsProperty, here we just validate the stats identities.
    const auto &st = m.forwarding().stats();
    std::uint64_t hist_hops = 0, hist_walks = 0;
    for (std::size_t h = 0; h < st.hop_histogram.size(); ++h) {
        hist_hops += h * st.hop_histogram[h];
        if (h > 0)
            hist_walks += st.hop_histogram[h];
    }
    EXPECT_EQ(st.hops, hist_hops);
    EXPECT_EQ(st.walks, hist_walks);
}

} // namespace
} // namespace memfwd
