/** @file
 * Shape-regression tests: the paper's qualitative results, asserted at
 * reduced scale so refactoring cannot silently break the reproduction.
 * (The full-scale numbers live in the bench binaries / EXPERIMENTS.md;
 * these tests pin the *directions* that define the paper.)
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workloads/driver.hh"

namespace memfwd
{
namespace
{

RunResult
shapeRun(const std::string &wl, unsigned line, bool opt,
         ForwardingConfig::Mode mode = ForwardingConfig::Mode::hardware)
{
    setVerbose(false);
    RunConfig cfg;
    cfg.workload = wl;
    cfg.params.scale = 0.4;
    cfg.machine.hierarchy.setLineBytes(line);
    cfg.machine.forwarding.mode = mode;
    cfg.variant.layout_opt = opt;
    return runWorkload(cfg);
}

// Paper, Figure 5: "performance generally degrades when line size
// increases ... for the unoptimized cases" (no spatial locality).
TEST(Shapes, UnoptimizedDegradesWithLineSize)
{
    for (const std::string wl : {"vis", "mst"}) {
        const RunResult n32 = shapeRun(wl, 32, false);
        const RunResult n128 = shapeRun(wl, 128, false);
        EXPECT_GT(n128.cycles, n32.cycles) << wl;
    }
}

// Paper, Figure 5: the list workloads' optimized cases win clearly at
// long lines.
class OptimizedWinsAt128 : public ::testing::TestWithParam<std::string>
{
};

TEST_P(OptimizedWinsAt128, SpeedupAbove1_2)
{
    const RunResult n = shapeRun(GetParam(), 128, false);
    const RunResult l = shapeRun(GetParam(), 128, true);
    EXPECT_EQ(n.checksum, l.checksum);
    EXPECT_GT(double(n.cycles) / double(l.cycles), 1.2) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(ListApps, OptimizedWinsAt128,
                         ::testing::Values("health", "mst", "radiosity",
                                           "vis", "eqntott"));

// Paper, Figure 5: speedups increase along with line size.
TEST(Shapes, SpeedupGrowsWithLineSize)
{
    for (const std::string wl : {"vis", "health"}) {
        const double s32 =
            double(shapeRun(wl, 32, false).cycles) /
            double(shapeRun(wl, 32, true).cycles);
        const double s128 =
            double(shapeRun(wl, 128, false).cycles) /
            double(shapeRun(wl, 128, true).cycles);
        EXPECT_GT(s128, s32) << wl;
    }
}

// Paper, Section 5.3: Compress is the exception — the merged layout is
// relatively WORSE at short lines than at long ones.
TEST(Shapes, CompressCrossoverDirection)
{
    const double ratio32 =
        double(shapeRun("compress", 32, true).cycles) /
        double(shapeRun("compress", 32, false).cycles);
    const double ratio128 =
        double(shapeRun("compress", 128, true).cycles) /
        double(shapeRun("compress", 128, false).cycles);
    EXPECT_GT(ratio32, ratio128);
    EXPECT_GT(ratio32, 1.0); // actually loses at 32B
}

// Paper, Section 5.3: BH's 80B cells make clustering meaningful only
// at 256B lines.
TEST(Shapes, BhNeedsLongLines)
{
    const double s64 = double(shapeRun("bh", 64, false).cycles) /
                       double(shapeRun("bh", 64, true).cycles);
    const double s256 = double(shapeRun("bh", 256, false).cycles) /
                        double(shapeRun("bh", 256, true).cycles);
    EXPECT_GT(s256, s64);
    EXPECT_GT(s256, 1.1);
}

// Paper, Section 5.4 / Figure 10: SMV is the workload where forwarding
// fires; the L scheme pays for it and Perf bounds the loss.
TEST(Shapes, SmvForwardingStory)
{
    const RunResult n = shapeRun("smv", 32, false);
    const RunResult l = shapeRun("smv", 32, true);
    const RunResult perf =
        shapeRun("smv", 32, true, ForwardingConfig::Mode::perfect);

    EXPECT_EQ(n.checksum, l.checksum);
    EXPECT_EQ(l.checksum, perf.checksum);

    // Forwarding actually occurs, at a plausible rate.
    EXPECT_GT(l.loadForwardedFraction(), 0.01);
    EXPECT_LT(l.loadForwardedFraction(), 0.40);
    // One hop each (the optimization linearizes once).
    EXPECT_EQ(perf.loads_forwarded, 0u);
    // The overhead ordering of Figure 10(a).
    EXPECT_GT(l.cycles, perf.cycles);
}

// Paper, Figure 6(a): misses drop for the list apps at long lines.
TEST(Shapes, MissReductionAt128)
{
    for (const std::string wl : {"vis", "health", "mst"}) {
        const RunResult n = shapeRun(wl, 128, false);
        const RunResult l = shapeRun(wl, 128, true);
        EXPECT_LT(l.load_partial_misses + l.load_full_misses,
                  n.load_partial_misses + n.load_full_misses)
            << wl;
    }
}

// Paper, Section 3.2: dependence-speculation violations "almost never"
// happen, even where forwarding is frequent.
TEST(Shapes, SpeculationViolationsNegligible)
{
    const RunResult l = shapeRun("smv", 32, true);
    EXPECT_GT(l.lsq_speculations, 0u);
    EXPECT_LE(l.lsq_violations, l.lsq_speculations / 100);
}

// Paper, Table 1: relocation's space overhead is bounded and modest.
TEST(Shapes, SpaceOverheadModest)
{
    for (const std::string wl : {"vis", "health", "smv"}) {
        const RunResult l = shapeRun(wl, 32, true);
        EXPECT_GT(l.space_overhead_bytes, 0u) << wl;
        EXPECT_LT(l.space_overhead_bytes, Addr(64) << 20) << wl;
    }
}

} // namespace
} // namespace memfwd
