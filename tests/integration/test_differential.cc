/**
 * @file
 * Differential proof of FTC + chain-collapsing equivalence.
 *
 * The forwarding translation cache and lazy chain collapsing are
 * accelerations: they may change *timing* and *chain shape* but never
 * an architectural outcome.  This harness runs identical programs twice
 * — accelerations off and on — and requires:
 *
 *  - identical loaded values and final addresses for every reference;
 *  - identical user-trap sequences by (site, initial, final) — chain
 *    length is shape-dependent and deliberately excluded;
 *  - identical forwarded-reference counts (WalkResult.forwarded is the
 *    shape-invariant the Machine counts);
 *  - identical *canonical* heap images: collapse rewrites the payload
 *    of forwarded words, so each forwarded word is compared by the
 *    final word its chain resolves to, and data words byte-for-byte.
 *
 * Three program sources drive the comparison: all eight Table 1
 * workloads (hardware and exception modes), randomized op sequences
 * over a pool of relocated objects (100+ seeds across the feature
 * matrix), and chains deliberately poisoned with cycles/corruption
 * under the quarantine policy.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "core/cycle_check.hh"
#include "mem/tagged_memory.hh"
#include "runtime/machine.hh"
#include "runtime/relocation.hh"
#include "workloads/workload.hh"

namespace memfwd
{
namespace
{

/** Functional chain resolution on raw state (no timing, no stats). */
Addr
resolveFinalWord(const TaggedMemory &mem, Addr word)
{
    unsigned hops = 0;
    while (mem.fbit(word)) {
        word = wordAlign(mem.rawReadWord(word));
        if (++hops > 1u << 20)
            return 0; // cyclic: callers only canonicalize acyclic words
    }
    return word;
}

/**
 * Compare two heaps word-by-word up to chain shape: forwarded words by
 * where they resolve, data words by payload.  Reports the first few
 * divergent addresses rather than drowning the log.
 */
void
expectCanonicalHeapsEqual(const TaggedMemory &a, const TaggedMemory &b)
{
    const std::vector<Addr> pages_a = a.mappedPageBases();
    EXPECT_EQ(pages_a, b.mappedPageBases()) << "materialized pages differ";
    EXPECT_EQ(a.fbitCount(), b.fbitCount());

    unsigned reported = 0;
    for (const Addr base : pages_a) {
        if (!b.isMapped(base) || reported >= 5)
            continue;
        for (unsigned w = 0; w < TaggedMemory::pageWords; ++w) {
            const Addr addr = base + Addr(w) * wordBytes;
            const bool fa = a.fbit(addr);
            if (fa != b.fbit(addr)) {
                ADD_FAILURE() << "fbit differs at " << std::hex << addr;
                if (++reported >= 5)
                    break;
                continue;
            }
            const Word va =
                fa ? resolveFinalWord(a, addr) : a.rawReadWord(addr);
            const Word vb =
                fa ? resolveFinalWord(b, addr) : b.rawReadWord(addr);
            if (va != vb) {
                ADD_FAILURE()
                    << "canonical word differs at " << std::hex << addr
                    << (fa ? " (forwarded): " : " (data): ") << va
                    << " vs " << vb;
                if (++reported >= 5)
                    break;
            }
        }
    }
}

/** (site, initial, final) — the shape-invariant part of a user trap. */
using TrapRecord = std::tuple<SiteId, Addr, Addr>;

// ---------------------------------------------------------------------
// All eight workloads, accelerations off vs. on.
// ---------------------------------------------------------------------

class WorkloadDifferential
    : public ::testing::TestWithParam<
          std::tuple<std::string, MachineConfig::Mode>>
{
};

TEST_P(WorkloadDifferential, AcceleratedRunIsArchitecturallyIdentical)
{
    setVerbose(false);
    const auto &[name, mode] = GetParam();
    WorkloadParams params;
    params.seed = testSeed(params.seed);
    params.scale = 0.1;
    WorkloadVariant variant;
    variant.layout_opt = true; // the L case is where chains exist

    MachineConfig base = MachineConfig{}.forwardingMode(mode);
    MachineConfig accel =
        MachineConfig{}.forwardingMode(mode).ftc().collapse();

    Machine m_base(base);
    auto w_base = makeWorkload(name, params);
    w_base->run(m_base, variant);

    Machine m_accel(accel);
    auto w_accel = makeWorkload(name, params);
    w_accel->run(m_accel, variant);

    EXPECT_EQ(w_base->checksum(), w_accel->checksum());
    EXPECT_EQ(m_base.loads(), m_accel.loads());
    EXPECT_EQ(m_base.stores(), m_accel.stores());
    EXPECT_EQ(m_base.loadsForwarded(), m_accel.loadsForwarded());
    EXPECT_EQ(m_base.storesForwarded(), m_accel.storesForwarded());
    expectCanonicalHeapsEqual(m_base.mem(), m_accel.mem());

    // When the run forwarded at all, the FTC must have been exercised.
    const ForwardingStats &fs = m_accel.forwarding().stats();
    if (m_base.loadsForwarded() + m_base.storesForwarded() > 0)
        EXPECT_GT(fs.ftc_hits + fs.ftc_misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadDifferential,
    ::testing::Combine(
        ::testing::ValuesIn(workloadNames()),
        ::testing::Values(MachineConfig::Mode::hardware,
                          MachineConfig::Mode::exception)),
    [](const auto &info) {
        const bool exc =
            std::get<1>(info.param) == MachineConfig::Mode::exception;
        return std::get<0>(info.param) + (exc ? "_exc" : "_hw");
    });

// ---------------------------------------------------------------------
// Fast-forward mode: timing dropped, architecture intact.
// ---------------------------------------------------------------------

/**
 * Functional fast-forward skips cache/CPU timing but must keep every
 * architectural outcome: checksums, reference counts, forwarded-ref
 * counts and the canonical heap all match a fully timed run — both
 * when the whole program is fast-forwarded and when only the build
 * phase is (the memfwd_sim --fast-forward=build use case, where the
 * measured kernel still runs timed).
 */
class FastForwardDifferential
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{
};

TEST_P(FastForwardDifferential, MatchesTimedRunArchitecturally)
{
    setVerbose(false);
    const auto &[name, region] = GetParam();
    WorkloadParams params;
    params.seed = testSeed(params.seed);
    params.scale = 0.1;
    WorkloadVariant variant;
    variant.layout_opt = true;

    Machine m_timed((MachineConfig()));
    auto w_timed = makeWorkload(name, params);
    w_timed->run(m_timed, variant);

    Machine m_ff(MachineConfig{}.fastForward(region));
    auto w_ff = makeWorkload(name, params);
    w_ff->run(m_ff, variant);

    EXPECT_EQ(w_timed->checksum(), w_ff->checksum());
    EXPECT_EQ(m_timed.refsExecuted(), m_ff.refsExecuted());
    EXPECT_EQ(m_timed.loads(), m_ff.loads());
    EXPECT_EQ(m_timed.stores(), m_ff.stores());
    EXPECT_EQ(m_timed.loadsForwarded(), m_ff.loadsForwarded());
    EXPECT_EQ(m_timed.storesForwarded(), m_ff.storesForwarded());
    expectCanonicalHeapsEqual(m_timed.mem(), m_ff.mem());

    // Whole-program fast-forward must actually skip time.  Partial
    // fast-forward carries no such guarantee: skipping the build phase
    // also skips its cache warm-up, so the still-timed kernel starts
    // cold and can legitimately cost *more* total cycles.
    if (region == "all")
        EXPECT_LT(m_ff.cycles(), m_timed.cycles());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, FastForwardDifferential,
    ::testing::Combine(::testing::ValuesIn(workloadNames()),
                       ::testing::Values(std::string("all"),
                                         std::string("build"))),
    [](const auto &info) {
        return std::get<0>(info.param) + "_ff_" + std::get<1>(info.param);
    });

// ---------------------------------------------------------------------
// Randomized op sequences over a pool of relocated objects.
// ---------------------------------------------------------------------

constexpr unsigned obj_count = 24;
constexpr unsigned obj_words = 4;
constexpr Addr obj_base = 0x00100000;
constexpr Addr obj_stride = 0x100;
constexpr Addr reloc_base = 0x04000000;
constexpr Addr scratch_base = 0x08000000;

Addr
objAddr(unsigned i)
{
    return obj_base + Addr(i) * obj_stride;
}

/** Everything architecturally observable from one sequence run. */
struct Outcome
{
    std::vector<std::uint64_t> log; ///< values + final addrs, in op order
    std::vector<TrapRecord> traps;
    std::uint64_t loads = 0, stores = 0;
    std::uint64_t loads_forwarded = 0, stores_forwarded = 0;
    std::unique_ptr<Machine> machine; ///< kept alive for heap comparison
};

/**
 * The op mix: loads/stores through chains (sub-word included), chain
 * growth via transactional relocate(), Read_FBit probes, and fresh
 * region initialization.  Mutations that *sever* chains are excluded —
 * severing rewrites resolution upstream, which no acceleration can (or
 * should) preserve.
 */
Outcome
runCleanSequence(const MachineConfig &cfg, std::uint64_t seed)
{
    Outcome out;
    out.machine = std::make_unique<Machine>(cfg);
    Machine &m = *out.machine;
    Rng rng(seed);

    m.forwarding().traps().install([&](const TrapInfo &t) {
        out.traps.push_back({t.site, t.initial_addr, t.final_addr});
        return TrapAction::resume;
    });

    for (unsigned i = 0; i < obj_count; ++i)
        for (unsigned w = 0; w < obj_words; ++w)
            m.access(Access::store(objAddr(i) + w * wordBytes, 8, seed ^ (i * 131 + w)));

    Addr reloc_bump = reloc_base;
    Addr scratch_bump = scratch_base;
    for (unsigned op = 0; op < 400; ++op) {
        const unsigned obj = unsigned(rng.below(obj_count));
        const unsigned word = unsigned(rng.below(obj_words));
        const Addr addr = objAddr(obj) + word * wordBytes;
        const std::uint64_t pick = rng.below(100);
        if (pick < 45) {
            const AccessResult r = m.access(Access::load(addr, 8, 0, SiteId(op)));
            out.log.push_back(r.value);
            out.log.push_back(r.final_addr);
        } else if (pick < 70) {
            const AccessResult s =
                m.access(Access::store(addr, 8, rng.next(), 0, SiteId(op)));
            out.log.push_back(s.final_addr);
        } else if (pick < 85) {
            relocate(m, objAddr(obj), reloc_bump, obj_words);
            reloc_bump += obj_words * wordBytes + 0x40;
        } else if (pick < 90) {
            out.log.push_back((m.access(Access::readFBit(addr)).value != 0) ? 1 : 0);
        } else if (pick < 95) {
            const AccessResult r = m.access(Access::load(addr + 4, 4, 0, SiteId(op)));
            out.log.push_back(r.value);
            out.log.push_back(r.final_addr);
        } else {
            m.mem().initializeRegion(scratch_bump, 64);
            m.access(Access::store(scratch_bump + 8, 8, op));
            out.log.push_back(m.access(Access::load(scratch_bump + 8, 8)).value);
            scratch_bump += 0x1000;
        }
    }

    out.loads = m.loads();
    out.stores = m.stores();
    out.loads_forwarded = m.loadsForwarded();
    out.stores_forwarded = m.storesForwarded();
    return out;
}

MachineConfig
differentialConfig(int features, bool accelerated)
{
    MachineConfig cfg;
    if (features == 3)
        cfg.forwardingMode(MachineConfig::Mode::exception);
    if (!accelerated)
        return cfg;
    if (features == 0)
        return cfg.ftc();
    if (features == 1)
        return cfg.collapse();
    return cfg.ftc().collapse(); // 2 (hardware) and 3 (exception)
}

class CleanOpsDifferential
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CleanOpsDifferential, SameArchitecturalResults)
{
    setVerbose(false);
    const auto &[seed_index, features] = GetParam();
    const std::uint64_t seed = testSeed(0xd1ff0000u + seed_index);

    const Outcome base =
        runCleanSequence(differentialConfig(features, false), seed);
    const Outcome accel =
        runCleanSequence(differentialConfig(features, true), seed);

    ASSERT_EQ(base.log.size(), accel.log.size());
    EXPECT_EQ(base.log, accel.log);
    EXPECT_EQ(base.traps, accel.traps);
    EXPECT_EQ(base.loads, accel.loads);
    EXPECT_EQ(base.stores, accel.stores);
    EXPECT_EQ(base.loads_forwarded, accel.loads_forwarded);
    EXPECT_EQ(base.stores_forwarded, accel.stores_forwarded);
    expectCanonicalHeapsEqual(base.machine->mem(), accel.machine->mem());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByFeature, CleanOpsDifferential,
    ::testing::Combine(::testing::Range(0, 34),
                       ::testing::Values(0, 1, 2)),
    [](const auto &info) {
        const int f = std::get<1>(info.param);
        const char *kind =
            f == 0 ? "ftc" : (f == 1 ? "collapse" : "both");
        return std::string(kind) + "_s"
               + std::to_string(std::get<0>(info.param));
    });

INSTANTIATE_TEST_SUITE_P(
    ExceptionModeSeeds, CleanOpsDifferential,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Values(3)),
    [](const auto &info) {
        return "exc_s" + std::to_string(std::get<0>(info.param));
    });

// ---------------------------------------------------------------------
// Poisoned chains under the quarantine policy.
// ---------------------------------------------------------------------

struct FaultyOutcome
{
    std::vector<std::uint64_t> clean_values; ///< loads of healthy objects
    std::uint64_t cycles_detected = 0;
    std::uint64_t cycles_quarantined = 0;
    std::uint64_t corrupt_forwards = 0;
    std::unique_ptr<Machine> machine;
};

/**
 * Chains are grown, then two are closed into cycles and one is given a
 * misaligned (corrupt) tail.  The quarantine pin of a *cycle* depends
 * on chain shape, so poisoned-object values are not compared — only
 * that both runs detect, quarantine, and keep running identically for
 * every healthy object.
 */
FaultyOutcome
runFaultySequence(const MachineConfig &cfg, std::uint64_t seed)
{
    FaultyOutcome out;
    out.machine = std::make_unique<Machine>(cfg);
    Machine &m = *out.machine;
    Rng rng(seed);

    constexpr unsigned chains = 6;
    Addr bump = reloc_base;
    for (unsigned i = 0; i < chains; ++i) {
        for (unsigned w = 0; w < obj_words; ++w)
            m.access(Access::store(objAddr(i) + w * wordBytes, 8, seed + i * 7 + w));
        const unsigned relocs = 2 + unsigned(rng.below(2));
        for (unsigned r = 0; r < relocs; ++r) {
            relocate(m, objAddr(i), bump, obj_words);
            bump += obj_words * wordBytes + 0x40;
        }
    }

    // Poison deterministically: chains 0 and 1 become cycles (the tail
    // re-forwarded at the head), chain 2 gets a corrupt tail.
    for (unsigned i = 0; i < 2; ++i) {
        const Addr head = objAddr(i);
        const Addr tail = chaseChain(m, head);
        m.access(Access::unforwardedWrite(tail, head, true));
    }
    {
        const Addr tail = chaseChain(m, objAddr(2));
        m.access(Access::unforwardedWrite(tail, 0x6661, true)); // misaligned payload
    }

    // Reference everything, twice (the second pass rides the pins).
    for (unsigned pass = 0; pass < 2; ++pass) {
        for (unsigned i = 0; i < chains; ++i) {
            for (unsigned w = 0; w < obj_words; ++w) {
                const AccessResult r =
                    m.access(Access::load(objAddr(i) + w * wordBytes, 8));
                if (i >= 3) {
                    out.clean_values.push_back(r.value);
                    out.clean_values.push_back(r.final_addr);
                }
            }
        }
    }

    const ForwardingStats &fs = m.forwarding().stats();
    out.cycles_detected = fs.cycles_detected;
    out.cycles_quarantined = fs.cycles_quarantined;
    out.corrupt_forwards = fs.corrupt_forwards;
    return out;
}

class FaultyOpsDifferential : public ::testing::TestWithParam<int>
{
};

TEST_P(FaultyOpsDifferential, QuarantineBehaviorMatches)
{
    setVerbose(false);
    const std::uint64_t seed = testSeed(0xbad0000u + GetParam());
    const MachineConfig base =
        MachineConfig{}.cyclePolicy(CyclePolicy::quarantine);
    const MachineConfig accel =
        MachineConfig{}.cyclePolicy(CyclePolicy::quarantine).ftc().collapse();

    const FaultyOutcome a = runFaultySequence(base, seed);
    const FaultyOutcome b = runFaultySequence(accel, seed);

    EXPECT_EQ(a.clean_values, b.clean_values);
    EXPECT_GT(a.cycles_detected, 0u);
    EXPECT_EQ(a.cycles_detected, b.cycles_detected);
    EXPECT_EQ(a.cycles_quarantined, b.cycles_quarantined);
    EXPECT_GT(a.corrupt_forwards, 0u);
    EXPECT_EQ(a.corrupt_forwards, b.corrupt_forwards);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultyOpsDifferential,
                         ::testing::Range(0, 10));

} // namespace
} // namespace memfwd
