/** @file
 * Randomized structural fuzzing: layout optimizations applied to
 * randomly shaped structures must preserve contents, order, and
 * reachability — for any shape, repeatedly, interleaved with mutation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "runtime/list_linearize.hh"
#include "runtime/machine.hh"
#include "runtime/sim_allocator.hh"
#include "runtime/subtree_cluster.hh"

namespace memfwd
{
namespace
{

// ---------------------------------------------------------------------
// Random trees through subtreeCluster.
// ---------------------------------------------------------------------

constexpr unsigned t_node = 32;
constexpr unsigned t_left = 0;
constexpr unsigned t_right = 8;
constexpr unsigned t_key = 16;

class RandomTreeFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomTreeFuzz, ClusteringPreservesRandomBsts)
{
    setVerbose(false);
    Rng rng(GetParam());
    Machine m;
    SimAllocator alloc(m, GetParam());
    RelocationPool pool(alloc, 8 << 20);

    const Addr root_handle = alloc.alloc(8);
    m.store(root_handle, 8, 0);

    // Random BST insertion of 120 keys.
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 120; ++i) {
        const std::uint64_t key = rng.below(1 << 20);
        const Addr node = alloc.alloc(t_node, Placement::scattered);
        m.store(node + t_left, 8, 0);
        m.store(node + t_right, 8, 0);
        m.store(node + t_key, 8, key);
        Addr slot = root_handle;
        bool dup = false;
        LoadResult cur = m.load(slot, 8);
        while (cur.value != 0) {
            const std::uint64_t k =
                m.load(cur.value + t_key, 8, cur.ready).value;
            if (k == key) {
                dup = true;
                break;
            }
            slot = static_cast<Addr>(cur.value) +
                   (key < k ? t_left : t_right);
            cur = m.load(slot, 8, cur.ready);
        }
        if (dup)
            continue;
        m.store(slot, 8, node);
        keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());

    auto inorder = [&] {
        std::vector<std::uint64_t> out;
        std::vector<Addr> stack;
        Addr cur = static_cast<Addr>(m.load(root_handle, 8).value);
        while (cur != 0 || !stack.empty()) {
            while (cur != 0) {
                stack.push_back(cur);
                cur = static_cast<Addr>(m.load(cur + t_left, 8).value);
            }
            cur = stack.back();
            stack.pop_back();
            out.push_back(m.load(cur + t_key, 8).value);
            cur = static_cast<Addr>(m.load(cur + t_right, 8).value);
        }
        return out;
    };

    ASSERT_EQ(inorder(), keys);

    // Cluster repeatedly with random cluster sizes, mutating between.
    TreeDesc desc;
    desc.node_bytes = t_node;
    desc.child_offsets = {t_left, t_right};
    for (int round = 0; round < 3; ++round) {
        const unsigned cluster =
            32u << rng.below(4); // 32..256
        subtreeCluster(m, root_handle, desc, pool, cluster);
        EXPECT_EQ(inorder(), keys) << "round " << round;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeFuzz,
                         ::testing::Values(101u, 202u, 303u, 404u));

// ---------------------------------------------------------------------
// Random lists through repeated linearization + splicing.
// ---------------------------------------------------------------------

class RandomListFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomListFuzz, LinearizeSurvivesArbitrarySplices)
{
    setVerbose(false);
    Rng rng(GetParam());
    Machine m;
    SimAllocator alloc(m, GetParam() ^ 0xf00);
    RelocationPool pool(alloc, 16 << 20);

    const Addr head = alloc.alloc(8);
    m.store(head, 8, 0);
    std::vector<std::uint64_t> model; // front = list head

    auto checkAgainstModel = [&] {
        std::vector<std::uint64_t> got;
        LoadResult cur = m.load(head, 8);
        while (cur.value != 0) {
            got.push_back(m.load(cur.value + 8, 8, cur.ready).value);
            cur = m.load(cur.value + 0, 8, cur.ready);
        }
        ASSERT_EQ(got, model);
    };

    std::uint64_t next_val = 1;
    for (unsigned op = 0; op < 300; ++op) {
        const std::uint64_t pick = rng.below(10);
        if (pick < 5) {
            // Insert at a random position.
            const std::size_t pos =
                model.empty() ? 0 : rng.below(model.size() + 1);
            const Addr node = alloc.alloc(16, Placement::scattered);
            m.store(node + 8, 8, next_val);
            Addr slot = head;
            LoadResult cur = m.load(slot, 8);
            for (std::size_t i = 0; i < pos; ++i) {
                slot = static_cast<Addr>(cur.value) + 0;
                cur = m.load(slot, 8, cur.ready);
            }
            m.store(node + 0, 8, cur.value);
            m.store(slot, 8, node);
            model.insert(model.begin() + pos, next_val);
            ++next_val;
        } else if (pick < 8 && !model.empty()) {
            // Delete at a random position.
            const std::size_t pos = rng.below(model.size());
            Addr slot = head;
            LoadResult cur = m.load(slot, 8);
            for (std::size_t i = 0; i < pos; ++i) {
                slot = static_cast<Addr>(cur.value) + 0;
                cur = m.load(slot, 8, cur.ready);
            }
            const LoadResult nx =
                m.load(static_cast<Addr>(cur.value) + 0, 8, cur.ready);
            m.store(slot, 8, nx.value);
            model.erase(model.begin() + pos);
        } else {
            listLinearize(m, head, {16, 0, 0}, pool);
        }
        if (op % 37 == 0)
            checkAgainstModel();
    }
    checkAgainstModel();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomListFuzz,
                         ::testing::Values(7u, 14u, 21u, 28u));

} // namespace
} // namespace memfwd
