/** @file
 * Randomized structural fuzzing: layout optimizations applied to
 * randomly shaped structures must preserve contents, order, and
 * reachability — for any shape, repeatedly, interleaved with mutation.
 * Every fuzzer runs with the FTC + chain-collapsing accelerations both
 * off and on: acceleration must never change what a structure holds.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "runtime/layout_backend.hh"
#include "runtime/list_linearize.hh"
#include "runtime/machine.hh"
#include "runtime/relocation.hh"
#include "runtime/sim_allocator.hh"
#include "runtime/subtree_cluster.hh"

namespace memfwd
{
namespace
{

/** Seed + whether the FTC and collapsing are enabled. */
using FuzzParam = std::tuple<std::uint64_t, bool>;

MachineConfig
fuzzConfig(bool accelerated)
{
    return accelerated ? MachineConfig{}.ftc().collapse()
                       : MachineConfig{};
}

std::string
fuzzParamName(const ::testing::TestParamInfo<FuzzParam> &info)
{
    return "s" + std::to_string(std::get<0>(info.param))
           + (std::get<1>(info.param) ? "_accel" : "_plain");
}

// ---------------------------------------------------------------------
// Random trees through subtreeCluster.
// ---------------------------------------------------------------------

constexpr unsigned t_node = 32;
constexpr unsigned t_left = 0;
constexpr unsigned t_right = 8;
constexpr unsigned t_key = 16;

class RandomTreeFuzz : public ::testing::TestWithParam<FuzzParam>
{
};

TEST_P(RandomTreeFuzz, ClusteringPreservesRandomBsts)
{
    setVerbose(false);
    const std::uint64_t seed = testSeed(std::get<0>(GetParam()));
    Rng rng(seed);
    Machine m(fuzzConfig(std::get<1>(GetParam())));
    SimAllocator alloc(m, seed);
    RelocationPool pool(alloc, 8 << 20);
    ForwardingBackend fwd(m);

    const Addr root_handle = alloc.alloc(8);
    m.access(Access::store(root_handle, 8, 0));

    // Random BST insertion of 120 keys.
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 120; ++i) {
        const std::uint64_t key = rng.below(1 << 20);
        const Addr node = alloc.alloc(t_node, Placement::scattered);
        m.access(Access::store(node + t_left, 8, 0));
        m.access(Access::store(node + t_right, 8, 0));
        m.access(Access::store(node + t_key, 8, key));
        Addr slot = root_handle;
        bool dup = false;
        AccessResult cur = m.access(Access::load(slot, 8));
        while (cur.value != 0) {
            const std::uint64_t k =
                m.access(Access::load(cur.value + t_key, 8, cur.ready)).value;
            if (k == key) {
                dup = true;
                break;
            }
            slot = static_cast<Addr>(cur.value) +
                   (key < k ? t_left : t_right);
            cur = m.access(Access::load(slot, 8, cur.ready));
        }
        if (dup)
            continue;
        m.access(Access::store(slot, 8, node));
        keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());

    auto inorder = [&] {
        std::vector<std::uint64_t> out;
        std::vector<Addr> stack;
        Addr cur = static_cast<Addr>(m.access(Access::load(root_handle, 8)).value);
        while (cur != 0 || !stack.empty()) {
            while (cur != 0) {
                stack.push_back(cur);
                cur = static_cast<Addr>(m.access(Access::load(cur + t_left, 8)).value);
            }
            cur = stack.back();
            stack.pop_back();
            out.push_back(m.access(Access::load(cur + t_key, 8)).value);
            cur = static_cast<Addr>(m.access(Access::load(cur + t_right, 8)).value);
        }
        return out;
    };

    ASSERT_EQ(inorder(), keys);

    // Cluster repeatedly with random cluster sizes, mutating between.
    TreeDesc desc;
    desc.node_bytes = t_node;
    desc.child_offsets = {t_left, t_right};
    for (int round = 0; round < 3; ++round) {
        const unsigned cluster =
            32u << rng.below(4); // 32..256
        subtreeCluster(fwd, root_handle, desc, pool, cluster);
        EXPECT_EQ(inorder(), keys) << "round " << round;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomTreeFuzz,
    ::testing::Combine(::testing::Values(101u, 202u, 303u, 404u),
                       ::testing::Bool()),
    fuzzParamName);

// ---------------------------------------------------------------------
// Random lists through repeated linearization + splicing.
// ---------------------------------------------------------------------

class RandomListFuzz : public ::testing::TestWithParam<FuzzParam>
{
};

TEST_P(RandomListFuzz, LinearizeSurvivesArbitrarySplices)
{
    setVerbose(false);
    const std::uint64_t seed = testSeed(std::get<0>(GetParam()));
    Rng rng(seed);
    Machine m(fuzzConfig(std::get<1>(GetParam())));
    SimAllocator alloc(m, seed ^ 0xf00);
    RelocationPool pool(alloc, 16 << 20);
    ForwardingBackend fwd(m);

    const Addr head = alloc.alloc(8);
    m.access(Access::store(head, 8, 0));
    std::vector<std::uint64_t> model; // front = list head

    auto checkAgainstModel = [&] {
        std::vector<std::uint64_t> got;
        AccessResult cur = m.access(Access::load(head, 8));
        while (cur.value != 0) {
            got.push_back(m.access(Access::load(cur.value + 8, 8, cur.ready)).value);
            cur = m.access(Access::load(cur.value + 0, 8, cur.ready));
        }
        ASSERT_EQ(got, model);
    };

    std::uint64_t next_val = 1;
    for (unsigned op = 0; op < 300; ++op) {
        const std::uint64_t pick = rng.below(10);
        if (pick < 5) {
            // Insert at a random position.
            const std::size_t pos =
                model.empty() ? 0 : rng.below(model.size() + 1);
            const Addr node = alloc.alloc(16, Placement::scattered);
            m.access(Access::store(node + 8, 8, next_val));
            Addr slot = head;
            AccessResult cur = m.access(Access::load(slot, 8));
            for (std::size_t i = 0; i < pos; ++i) {
                slot = static_cast<Addr>(cur.value) + 0;
                cur = m.access(Access::load(slot, 8, cur.ready));
            }
            m.access(Access::store(node + 0, 8, cur.value));
            m.access(Access::store(slot, 8, node));
            model.insert(model.begin() + pos, next_val);
            ++next_val;
        } else if (pick < 8 && !model.empty()) {
            // Delete at a random position.
            const std::size_t pos = rng.below(model.size());
            Addr slot = head;
            AccessResult cur = m.access(Access::load(slot, 8));
            for (std::size_t i = 0; i < pos; ++i) {
                slot = static_cast<Addr>(cur.value) + 0;
                cur = m.access(Access::load(slot, 8, cur.ready));
            }
            const AccessResult nx =
                m.access(Access::load(static_cast<Addr>(cur.value) + 0, 8, cur.ready));
            m.access(Access::store(slot, 8, nx.value));
            model.erase(model.begin() + pos);
        } else {
            listLinearize(fwd, head, {16, 0, 0}, pool);
        }
        if (op % 37 == 0)
            checkAgainstModel();
    }
    checkAgainstModel();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomListFuzz,
    ::testing::Combine(::testing::Values(7u, 14u, 21u, 28u),
                       ::testing::Bool()),
    fuzzParamName);

// ---------------------------------------------------------------------
// Relocation / collapse / cycle interleavings under quarantine.
// ---------------------------------------------------------------------

/** Seed + machine flavor (0 plain, 1 accelerated, 2 accel+exception). */
class ChainInterleavingFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>>
{
};

TEST_P(ChainInterleavingFuzz, QuarantinedCyclesNeverDerailCleanChains)
{
    setVerbose(false);
    const std::uint64_t seed = testSeed(std::get<0>(GetParam()) + 0xc0de);
    const int flavor = std::get<1>(GetParam());

    MachineConfig cfg = fuzzConfig(flavor >= 1);
    cfg.cyclePolicy(CyclePolicy::quarantine).hopLimit(6);
    if (flavor == 2)
        cfg.forwardingMode(MachineConfig::Mode::exception);
    Machine m(cfg);
    Rng rng(seed);

    // One-word objects at fixed slots; relocation targets from a bump.
    constexpr unsigned n_objects = 16;
    constexpr Addr base = 0x00200000;
    Addr bump = 0x05000000;
    std::vector<std::uint64_t> model(n_objects);
    std::vector<bool> poisoned(n_objects, false);
    for (unsigned k = 0; k < n_objects; ++k) {
        model[k] = seed ^ (k * 977);
        m.access(Access::store(base + k * 0x80, 8, model[k]));
    }

    unsigned cycles_made = 0;
    for (unsigned op = 0; op < 500; ++op) {
        const unsigned k = unsigned(rng.below(n_objects));
        const Addr head = base + k * 0x80;
        const std::uint64_t pick = rng.below(100);
        if (pick < 40) {
            // A load through the (possibly long, possibly collapsed)
            // chain: clean objects must match the model; poisoned ones
            // must simply keep resolving without throwing.
            const AccessResult r = m.access(Access::load(head, 8));
            if (!poisoned[k])
                EXPECT_EQ(r.value, model[k]) << "object " << k;
        } else if (pick < 65) {
            if (!poisoned[k]) {
                const std::uint64_t v = rng.next();
                m.access(Access::store(head, 8, v));
                model[k] = v;
            }
        } else if (pick < 90) {
            // Chains only grow on healthy objects: relocate() walks the
            // source chain and would (correctly) quarantine a poisoned
            // one mid-transaction.
            if (!poisoned[k]) {
                relocate(m, head, bump, 1);
                bump += 0x40;
            }
        } else {
            // Close the chain into a cycle: tail re-forwarded at the
            // head.  Resolution quarantines it and execution continues.
            if (!poisoned[k] && (m.access(Access::readFBit(head)).value != 0)) {
                const Addr tail = chaseChain(m, head);
                if (tail != head) {
                    m.access(Access::unforwardedWrite(tail, head, true));
                    poisoned[k] = true;
                    ++cycles_made;
                }
            }
        }
    }

    // Every healthy object still reads its model value; every poisoned
    // one resolves from its pin without throwing.
    for (unsigned k = 0; k < n_objects; ++k) {
        const AccessResult r = m.access(Access::load(base + k * 0x80, 8));
        if (!poisoned[k])
            EXPECT_EQ(r.value, model[k]) << "object " << k;
    }
    const auto &st = m.forwarding().stats();
    EXPECT_EQ(st.cycles_quarantined, cycles_made);
    if (cycles_made > 0)
        EXPECT_GE(st.cycles_detected, cycles_made);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ChainInterleavingFuzz,
    ::testing::Combine(::testing::Values(11u, 22u, 33u, 44u, 55u, 66u),
                       ::testing::Values(0, 1, 2)),
    [](const auto &info) {
        const int f = std::get<1>(info.param);
        const char *kind =
            f == 0 ? "plain" : (f == 1 ? "accel" : "accel_exc");
        return std::string(kind) + "_s"
               + std::to_string(std::get<0>(info.param));
    });

} // namespace
} // namespace memfwd
