/**
 * @file
 * Integration: the metadata plane is invisible to correct programs.
 *
 * Every workload runs twice — metadata plane off and on — and must be
 * checksum- and cycle-identical with zero temporal violations: the
 * temporal-safety check rides trap delivery on the forwarded path only,
 * so a program that never touches freed memory cannot observe it, in
 * results or in timing.
 */

#include <gtest/gtest.h>

#include <string>

#include "workloads/driver.hh"
#include "workloads/workload.hh"

namespace memfwd
{
namespace
{

std::uint64_t
violations(const RunResult &r)
{
    const obs::MetricsNode *q = r.metrics.findChild("quarantine");
    if (!q)
        return 0;
    return q->counterValue("violations_uaf") +
           q->counterValue("violations_oob");
}

class TemporalSafetyEquivalence
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TemporalSafetyEquivalence, PlaneOnIsObservationallyIdentical)
{
    RunConfig cfg;
    cfg.workload = GetParam();
    cfg.params.scale = 0.05;
    cfg.variant.layout_opt = true; // exercise the forwarded path

    const RunResult off = runWorkload(cfg);
    cfg.machine.metadataPlane(true);
    const RunResult on = runWorkload(cfg);

    EXPECT_EQ(on.checksum, off.checksum);
    EXPECT_EQ(on.cycles, off.cycles);
    EXPECT_EQ(on.instructions, off.instructions);
    EXPECT_EQ(on.loads_forwarded, off.loads_forwarded);
    EXPECT_EQ(violations(on), 0u) << "false positive on clean workload";
    EXPECT_EQ(violations(off), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, TemporalSafetyEquivalence,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

} // namespace
} // namespace memfwd
