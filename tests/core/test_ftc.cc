/**
 * @file
 * Unit tests for the forwarding translation cache and lazy chain
 * collapsing: the TranslationCache container itself, the engine's hit
 * timing, precise invalidation through the TaggedMemory mutation
 * listener, and the collapse rewrite and its transactional suspension.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "core/cycle_check.hh"
#include "core/forwarding_engine.hh"
#include "mem/tagged_memory.hh"

namespace memfwd
{
namespace
{

struct Rig
{
    TaggedMemory mem;
    MemoryHierarchy hierarchy{HierarchyConfig{}};
    ForwardingEngine engine{mem, hierarchy, ForwardingConfig{}};

    explicit Rig(ForwardingConfig cfg = {})
        : engine(mem, hierarchy, cfg)
    {}
};

ForwardingConfig
ftcConfig()
{
    ForwardingConfig cfg;
    cfg.ftc_enabled = true;
    return cfg;
}

ForwardingConfig
collapseConfig(unsigned threshold = 2)
{
    ForwardingConfig cfg;
    cfg.collapse_enabled = true;
    cfg.collapse_threshold = threshold;
    return cfg;
}

// ----- TranslationCache container --------------------------------------

TEST(TranslationCache, ConfigureRoundsSetsToPowerOfTwo)
{
    TranslationCache c;
    c.configure(6, 2);
    EXPECT_EQ(c.sets(), 8u);
    EXPECT_EQ(c.ways(), 2u);
    EXPECT_EQ(c.entryCount(), 0u);

    c.configure(0, 0); // degenerate inputs clamp to 1x1
    EXPECT_EQ(c.sets(), 1u);
    EXPECT_EQ(c.ways(), 1u);
}

TEST(TranslationCache, LookupPromotesAndInsertEvictsLru)
{
    TranslationCache c;
    c.configure(1, 2); // one set: every address collides

    c.insert(0x1000, 0xa000, 3);
    c.insert(0x2000, 0xb000, 1);
    EXPECT_EQ(c.entryCount(), 2u);

    // Promote 0x1000: 0x2000 becomes the LRU victim.
    const TranslationCache::Entry *e = c.lookup(0x1000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->final_word, 0xa000u);
    EXPECT_EQ(e->hops, 3u);

    c.insert(0x3000, 0xc000, 2);
    EXPECT_EQ(c.entryCount(), 2u);
    EXPECT_EQ(c.lookup(0x2000), nullptr);
    EXPECT_NE(c.lookup(0x1000), nullptr);
    EXPECT_NE(c.lookup(0x3000), nullptr);
}

TEST(TranslationCache, InsertRefreshesExistingEntryInPlace)
{
    TranslationCache c;
    c.configure(1, 2);
    c.insert(0x1000, 0xa000, 1);
    c.insert(0x1000, 0xd000, 4); // same start: refresh, not duplicate
    EXPECT_EQ(c.entryCount(), 1u);
    const TranslationCache::Entry *e = c.lookup(0x1000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->final_word, 0xd000u);
    EXPECT_EQ(e->hops, 4u);
}

TEST(TranslationCache, PeekDoesNotPromoteLru)
{
    TranslationCache c;
    c.configure(1, 2);
    c.insert(0x1000, 0xa000, 1); // older
    c.insert(0x2000, 0xb000, 1); // newer
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(c.peek(0x1000), 0xa000u);

    // Had peek promoted 0x1000, the victim would be 0x2000.
    c.insert(0x3000, 0xc000, 1);
    EXPECT_EQ(c.peek(0x1000), 0u);
    EXPECT_EQ(c.peek(0x2000), 0xb000u);
}

TEST(TranslationCache, InvalidationPrimitivesReportDropCounts)
{
    TranslationCache c;
    c.configure(4, 2);
    // Consecutive words map to consecutive sets: no aliasing here.
    c.insert(0x1000, 0xa000, 1);
    c.insert(0x1008, 0xa000, 2); // same final word as 0x1000
    c.insert(0x1010, 0xb000, 1);

    EXPECT_EQ(c.invalidateStart(0x1010), 1u);
    EXPECT_EQ(c.invalidateStart(0x1010), 0u); // already gone
    EXPECT_EQ(c.invalidateFinal(0xa000), 2u); // both entries resolving there
    EXPECT_EQ(c.entryCount(), 0u);

    c.insert(0x1000, 0xa000, 1);
    c.insert(0x1008, 0xb000, 1);
    EXPECT_EQ(c.flush(), 2u);
    EXPECT_EQ(c.flush(), 0u);
}

// ----- FTC fast path ---------------------------------------------------

TEST(FtcEngine, HitServesFinalAddressForHitCost)
{
    Rig rig(ftcConfig());
    rig.mem.rawWriteWord(0x1000, 99);
    rig.engine.forwardWord(0x1000, 0x2000);

    const WalkResult first = rig.engine.resolve(0x1004, AccessType::load, 0);
    EXPECT_EQ(first.hops, 1u);
    EXPECT_TRUE(first.forwarded);
    EXPECT_EQ(rig.engine.stats().ftc_misses, 1u);
    EXPECT_EQ(rig.engine.ftcPeek(0x1000), 0x2000u);

    const WalkResult hit = rig.engine.resolve(0x1004, AccessType::load, 100);
    EXPECT_EQ(hit.final_addr, 0x2004u); // byte offset preserved
    EXPECT_EQ(hit.hops, 0u);
    EXPECT_TRUE(hit.forwarded);
    // Exactly the configured hit cost: no hierarchy access was charged,
    // which is also the proof the hit does not pollute the cache.
    EXPECT_EQ(hit.forward_cycles, rig.engine.config().ftc_hit_cost);
    EXPECT_EQ(hit.ready, 100 + rig.engine.config().ftc_hit_cost);
    EXPECT_EQ(rig.engine.stats().ftc_hits, 1u);
    EXPECT_EQ(rig.engine.stats().walks, 1u); // the hit is not a walk
}

TEST(FtcEngine, NonForwardedReferencesNeverTouchTheFtc)
{
    Rig rig(ftcConfig());
    const WalkResult w = rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_FALSE(w.forwarded);
    EXPECT_EQ(rig.engine.stats().ftc_hits, 0u);
    EXPECT_EQ(rig.engine.stats().ftc_misses, 0u);
}

TEST(FtcEngine, TailAppendInvalidatesPrecisely)
{
    Rig rig(ftcConfig());
    // Two independent chains, both cached.
    rig.engine.forwardWord(0x1000, 0x2000);
    rig.engine.forwardWord(0x8000, 0x9000);
    rig.engine.resolve(0x1000, AccessType::load, 0);
    rig.engine.resolve(0x8000, AccessType::load, 0);
    EXPECT_EQ(rig.engine.ftcPeek(0x1000), 0x2000u);
    EXPECT_EQ(rig.engine.ftcPeek(0x8000), 0x9000u);

    // Relocating 0x2000 appends at the first chain's tail: only the
    // entry resolving to 0x2000 may be dropped.
    rig.engine.forwardWord(0x2000, 0x3000);
    EXPECT_EQ(rig.engine.ftcPeek(0x1000), 0u);
    EXPECT_EQ(rig.engine.ftcPeek(0x8000), 0x9000u);
    EXPECT_EQ(rig.engine.stats().ftc_invalidations, 1u);

    const WalkResult w = rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_EQ(w.final_addr, 0x3000u);
    EXPECT_EQ(w.hops, 2u);
}

TEST(FtcEngine, ForwardedWordMutationFlushesConservatively)
{
    Rig rig(ftcConfig());
    rig.engine.forwardWord(0x1000, 0x2000);
    rig.engine.forwardWord(0x8000, 0x9000);
    rig.engine.resolve(0x1000, AccessType::load, 0);
    rig.engine.resolve(0x8000, AccessType::load, 0);

    // Redirecting an already-forwarded word could sever any cached
    // chain mid-way: everything goes.
    rig.mem.unforwardedWrite(0x1000, 0x4000, true);
    EXPECT_EQ(rig.engine.ftcPeek(0x1000), 0u);
    EXPECT_EQ(rig.engine.ftcPeek(0x8000), 0u);
    EXPECT_EQ(rig.engine.stats().ftc_invalidations, 2u);

    EXPECT_EQ(rig.engine.resolve(0x1000, AccessType::load, 0).final_addr,
              0x4000u);
}

TEST(FtcEngine, StaleEntryRecheckFallsBackToTheWalk)
{
    // If the listener is detached (an embedder wiring its own), a tail
    // append leaves a stale entry behind; the defensive final-word
    // re-check must drop it and re-walk instead of serving a
    // non-terminal address.
    Rig rig(ftcConfig());
    rig.engine.forwardWord(0x1000, 0x2000);
    rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_EQ(rig.engine.ftcPeek(0x1000), 0x2000u);

    rig.mem.setFwdStateListener(nullptr);
    rig.engine.forwardWord(0x2000, 0x3000);
    EXPECT_EQ(rig.engine.ftcPeek(0x1000), 0x2000u); // stale, by design

    const WalkResult w = rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_EQ(w.final_addr, 0x3000u);
    EXPECT_EQ(w.hops, 2u);
    EXPECT_EQ(rig.engine.stats().ftc_hits, 0u);
    EXPECT_GE(rig.engine.stats().ftc_invalidations, 1u);
}

TEST(FtcEngine, ExceptionModeHitSkipsTheDispatchCost)
{
    ForwardingConfig cfg = ftcConfig();
    cfg.mode = ForwardingConfig::Mode::exception;
    cfg.exception_cost = 30;
    Rig rig(cfg);
    rig.engine.forwardWord(0x1000, 0x2000);

    const WalkResult miss = rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_GE(miss.forward_cycles, cfg.exception_cost);

    const WalkResult hit = rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_EQ(hit.forward_cycles, cfg.ftc_hit_cost);
    EXPECT_LT(hit.forward_cycles, cfg.exception_cost);
}

TEST(FtcEngine, HitStillDeliversTheUserTrap)
{
    Rig rig(ftcConfig());
    rig.engine.forwardWord(0x1000, 0x2000);
    rig.engine.forwardWord(0x2000, 0x3000);
    rig.engine.resolve(0x1004, AccessType::load, 0);

    unsigned fired = 0;
    TrapInfo seen{};
    rig.engine.traps().install([&](const TrapInfo &info) {
        ++fired;
        seen = info;
        return TrapAction::resume;
    });
    rig.engine.resolve(0x1004, AccessType::load, 0, /*site=*/7,
                       /*pointer_slot=*/0x6000);
    EXPECT_EQ(fired, 1u);
    EXPECT_EQ(seen.site, 7u);
    EXPECT_EQ(seen.initial_addr, 0x1004u);
    EXPECT_EQ(seen.final_addr, 0x3004u);
    EXPECT_EQ(seen.hops, 2u); // the fill-time chain length
    EXPECT_EQ(seen.pointer_slot, 0x6000u);
    EXPECT_EQ(rig.engine.stats().ftc_hits, 1u);
}

TEST(FtcEngine, QuarantinePinIsServedBeforeTheFtc)
{
    ForwardingConfig cfg = ftcConfig();
    cfg.hop_limit = 4;
    cfg.cycle_policy = CyclePolicy::quarantine;
    Rig rig(cfg);
    rig.mem.unforwardedWrite(0x1000, 0x2000, true);
    rig.mem.unforwardedWrite(0x2000, 0x1000, true);

    rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_EQ(rig.engine.stats().cycles_quarantined, 1u);

    const WalkResult again = rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_TRUE(again.forwarded);
    EXPECT_EQ(rig.engine.stats().quarantine_hits, 1u);
    EXPECT_EQ(rig.engine.stats().ftc_hits, 0u); // pin wins, cache unused
}

// ----- lazy chain collapsing ------------------------------------------

TEST(Collapse, LongWalkRewritesTheChainHead)
{
    Rig rig(collapseConfig(2));
    rig.mem.rawWriteWord(0x1000, 1234);
    rig.engine.forwardWord(0x1000, 0x2000);
    rig.engine.forwardWord(0x2000, 0x3000);
    rig.engine.forwardWord(0x3000, 0x4000);

    const WalkResult w = rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_EQ(w.final_addr, 0x4000u);
    EXPECT_EQ(w.hops, 3u);
    EXPECT_EQ(rig.engine.stats().chains_collapsed, 1u);
    // The head now forwards straight at the final word...
    EXPECT_TRUE(rig.mem.fbit(0x1000));
    EXPECT_EQ(rig.mem.rawReadWord(0x1000), 0x4000u);
    // ...so the next reference pays exactly one hop.
    const WalkResult again = rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_EQ(again.final_addr, 0x4000u);
    EXPECT_EQ(again.hops, 1u);
    EXPECT_EQ(rig.mem.rawReadWord(0x4000), 1234u);
}

TEST(Collapse, MidChainPointersStillResolveAfterCollapse)
{
    Rig rig(collapseConfig(2));
    rig.engine.forwardWord(0x1000, 0x2000);
    rig.engine.forwardWord(0x2000, 0x3000);
    rig.engine.forwardWord(0x3000, 0x4000);
    rig.engine.resolve(0x1000, AccessType::load, 0); // collapses the head

    // A pointer into the middle of the chain is untouched by the
    // rewrite and still reaches the same final word.
    const WalkResult mid = rig.engine.resolve(0x2004, AccessType::load, 0);
    EXPECT_EQ(mid.final_addr, 0x4004u);
}

TEST(Collapse, ShortChainsStayBelowTheThreshold)
{
    Rig rig(collapseConfig(2));
    rig.engine.forwardWord(0x1000, 0x2000);
    rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_EQ(rig.engine.stats().chains_collapsed, 0u);
    EXPECT_EQ(rig.mem.rawReadWord(0x1000), 0x2000u);
}

TEST(Collapse, ScopedSuspensionBlocksTheRewrite)
{
    Rig rig(collapseConfig(2));
    rig.engine.forwardWord(0x1000, 0x2000);
    rig.engine.forwardWord(0x2000, 0x3000);

    {
        ScopedCollapseSuspend guard(rig.engine);
        rig.engine.resolve(0x1000, AccessType::load, 0);
        EXPECT_EQ(rig.engine.stats().chains_collapsed, 0u);
        EXPECT_EQ(rig.mem.rawReadWord(0x1000), 0x2000u) << "untouched";
    }

    rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_EQ(rig.engine.stats().chains_collapsed, 1u);
    EXPECT_EQ(rig.mem.rawReadWord(0x1000), 0x3000u);
}

TEST(Collapse, SuspensionNests)
{
    Rig rig(collapseConfig(2));
    rig.engine.forwardWord(0x1000, 0x2000);
    rig.engine.forwardWord(0x2000, 0x3000);
    {
        ScopedCollapseSuspend outer(rig.engine);
        {
            ScopedCollapseSuspend inner(rig.engine);
        }
        rig.engine.resolve(0x1000, AccessType::load, 0);
        EXPECT_EQ(rig.engine.stats().chains_collapsed, 0u)
            << "still suspended until the outer scope closes";
    }
}

TEST(Collapse, RewriteDoesNotInvalidateItsOwnFtcEntry)
{
    // Both accelerations on: the collapse store is a semantics-preserving
    // self-write and must not flush the cache it is about to fill.
    ForwardingConfig cfg = ftcConfig();
    cfg.collapse_enabled = true;
    cfg.collapse_threshold = 2;
    Rig rig(cfg);
    rig.engine.forwardWord(0x1000, 0x2000);
    rig.engine.forwardWord(0x2000, 0x3000);
    rig.engine.forwardWord(0x3000, 0x4000);

    rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_EQ(rig.engine.stats().chains_collapsed, 1u);
    EXPECT_EQ(rig.engine.stats().ftc_invalidations, 0u);
    EXPECT_EQ(rig.engine.ftcPeek(0x1000), 0x4000u);

    const WalkResult hit = rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_EQ(hit.hops, 0u);
    EXPECT_EQ(hit.final_addr, 0x4000u);
    EXPECT_EQ(rig.engine.stats().ftc_hits, 1u);
}

} // namespace
} // namespace memfwd
