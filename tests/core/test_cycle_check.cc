/** @file Unit tests for accurate forwarding-cycle detection. */

#include <gtest/gtest.h>

#include "core/cycle_check.hh"
#include "mem/tagged_memory.hh"

namespace memfwd
{
namespace
{

TEST(CycleCheck, EmptyChainIsClean)
{
    TaggedMemory mem;
    const CycleCheckResult r = accurateCycleCheck(mem, 0x1000);
    EXPECT_FALSE(r.is_cycle);
    EXPECT_EQ(r.length, 0u);
}

TEST(CycleCheck, LinearChainIsClean)
{
    TaggedMemory mem;
    mem.unforwardedWrite(0x1000, 0x2000, true);
    mem.unforwardedWrite(0x2000, 0x3000, true);
    const CycleCheckResult r = accurateCycleCheck(mem, 0x1000);
    EXPECT_FALSE(r.is_cycle);
    EXPECT_EQ(r.length, 2u);
}

TEST(CycleCheck, SelfLoopDetected)
{
    TaggedMemory mem;
    mem.unforwardedWrite(0x1000, 0x1000, true);
    const CycleCheckResult r = accurateCycleCheck(mem, 0x1000);
    EXPECT_TRUE(r.is_cycle);
    EXPECT_EQ(r.length, 1u);
}

TEST(CycleCheck, TwoNodeCycleDetected)
{
    TaggedMemory mem;
    mem.unforwardedWrite(0x1000, 0x2000, true);
    mem.unforwardedWrite(0x2000, 0x1000, true);
    EXPECT_TRUE(accurateCycleCheck(mem, 0x1000).is_cycle);
}

TEST(CycleCheck, RhoShapeDetected)
{
    // A tail leading into a loop: 0x1000 -> 0x2000 -> 0x3000 -> 0x2000.
    TaggedMemory mem;
    mem.unforwardedWrite(0x1000, 0x2000, true);
    mem.unforwardedWrite(0x2000, 0x3000, true);
    mem.unforwardedWrite(0x3000, 0x2000, true);
    const CycleCheckResult r = accurateCycleCheck(mem, 0x1000);
    EXPECT_TRUE(r.is_cycle);
    EXPECT_EQ(r.length, 3u); // hops taken before the repeat was seen
}

TEST(CycleCheck, UnalignedStartUsesContainingWord)
{
    TaggedMemory mem;
    mem.unforwardedWrite(0x1000, 0x1000, true);
    EXPECT_TRUE(accurateCycleCheck(mem, 0x1003).is_cycle);
}

TEST(CycleCheck, SelfLoopEntryAndPin)
{
    TaggedMemory mem;
    mem.unforwardedWrite(0x1000, 0x1000, true);
    const CycleCheckResult r = accurateCycleCheck(mem, 0x1000);
    ASSERT_TRUE(r.is_cycle);
    // The whole chain is the loop: entry and pin are the start itself.
    EXPECT_EQ(r.cycle_entry, 0x1000u);
    EXPECT_EQ(r.pre_cycle, 0x1000u);
}

TEST(CycleCheck, RhoShapeEntryAndPin)
{
    // 0x1000 -> 0x2000 -> 0x3000 -> 0x2000: the walk re-enters at
    // 0x2000, and 0x1000 is the last address before the loop — the
    // natural place to pin a quarantined reference.
    TaggedMemory mem;
    mem.unforwardedWrite(0x1000, 0x2000, true);
    mem.unforwardedWrite(0x2000, 0x3000, true);
    mem.unforwardedWrite(0x3000, 0x2000, true);
    const CycleCheckResult r = accurateCycleCheck(mem, 0x1000);
    ASSERT_TRUE(r.is_cycle);
    EXPECT_EQ(r.cycle_entry, 0x2000u);
    EXPECT_EQ(r.pre_cycle, 0x1000u);
}

TEST(CycleCheck, ErrorCarriesContext)
{
    const ForwardingCycleError err(0xbeef0, 7);
    EXPECT_EQ(err.start(), 0xbeef0u);
    EXPECT_EQ(err.length(), 7u);
    EXPECT_NE(std::string(err.what()).find("forwarding cycle"),
              std::string::npos);
}

TEST(CycleCheck, ErrorCarriesQuarantineDecisionContext)
{
    const ForwardingCycleError err(0xbeef0, 7, /*site=*/42, "trap");
    EXPECT_EQ(err.site(), 42u);
    EXPECT_EQ(err.policy(), "trap");
    const std::string what = err.what();
    EXPECT_NE(what.find("0xbeef0"), std::string::npos);
    EXPECT_NE(what.find("length=7"), std::string::npos);
    EXPECT_NE(what.find("site=42"), std::string::npos);
    EXPECT_NE(what.find("policy=trap"), std::string::npos);
}

TEST(CycleCheck, ErrorDefaultsToAbortPolicyAndNoSite)
{
    const ForwardingCycleError err(0x1000, 1);
    EXPECT_EQ(err.site(), no_site);
    EXPECT_EQ(err.policy(), "abort");
}

} // namespace
} // namespace memfwd
