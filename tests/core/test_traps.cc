/** @file Unit tests for user-level forwarding traps. */

#include <gtest/gtest.h>

#include "core/traps.hh"

namespace memfwd
{
namespace
{

TEST(TrapRegistry, UnarmedByDefault)
{
    TrapRegistry reg;
    EXPECT_FALSE(reg.armed());
    EXPECT_EQ(reg.delivered(), 0u);
}

TEST(TrapRegistry, InstallRemove)
{
    TrapRegistry reg;
    const auto token =
        reg.install([](const TrapInfo &) { return TrapAction::resume; });
    EXPECT_TRUE(reg.armed());
    reg.remove(token);
    EXPECT_FALSE(reg.armed());
}

TEST(TrapRegistry, DeliverReachesAllHandlers)
{
    TrapRegistry reg;
    int a = 0, b = 0;
    reg.install([&](const TrapInfo &) { ++a; return TrapAction::resume; });
    reg.install([&](const TrapInfo &) { ++b; return TrapAction::resume; });
    reg.deliver({1, 0x100, 0x200, 1, 0});
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 1);
    EXPECT_EQ(reg.delivered(), 1u);
}

TEST(TrapRegistry, PointerFixReported)
{
    TrapRegistry reg;
    reg.install(
        [](const TrapInfo &) { return TrapAction::pointer_fixed; });
    EXPECT_TRUE(reg.deliver({1, 0x100, 0x200, 1, 0x300}));
    EXPECT_EQ(reg.pointersFixed(), 1u);
}

TEST(TrapRegistry, ResumeOnlyIsNotAFix)
{
    TrapRegistry reg;
    reg.install([](const TrapInfo &) { return TrapAction::resume; });
    EXPECT_FALSE(reg.deliver({1, 0x100, 0x200, 1, 0}));
    EXPECT_EQ(reg.pointersFixed(), 0u);
}

TEST(ForwardingProfiler, CountsPerSite)
{
    TrapRegistry reg;
    ForwardingProfiler prof(reg);
    reg.deliver({7, 0x100, 0x200, 1, 0});
    reg.deliver({7, 0x108, 0x208, 2, 0});
    reg.deliver({9, 0x300, 0x400, 1, 0});
    EXPECT_EQ(prof.count(7), 2u);
    EXPECT_EQ(prof.hops(7), 3u);
    EXPECT_EQ(prof.count(9), 1u);
    EXPECT_EQ(prof.count(12345), 0u);
}

TEST(ForwardingProfiler, HottestSortsDescending)
{
    TrapRegistry reg;
    ForwardingProfiler prof(reg);
    for (int i = 0; i < 5; ++i)
        reg.deliver({1, 0, 0, 1, 0});
    for (int i = 0; i < 9; ++i)
        reg.deliver({2, 0, 0, 1, 0});
    const auto hot = prof.hottest();
    ASSERT_EQ(hot.size(), 2u);
    EXPECT_EQ(hot[0].first, 2u);
    EXPECT_EQ(hot[0].second, 9u);
    EXPECT_EQ(hot[1].first, 1u);
}

TEST(ForwardingProfiler, DetachesOnDestruction)
{
    TrapRegistry reg;
    {
        ForwardingProfiler prof(reg);
        EXPECT_TRUE(reg.armed());
    }
    EXPECT_FALSE(reg.armed());
}

} // namespace
} // namespace memfwd
