/** @file Unit tests for the deterministic fault injector. */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/fault_injector.hh"
#include "mem/tagged_memory.hh"

namespace memfwd
{
namespace
{

/** Build 0x1000 -> 0x2000 -> ... -> terminal, `hops` links long. */
void
buildChain(TaggedMemory &mem, unsigned hops, Word terminal_payload = 42)
{
    for (unsigned i = 0; i < hops; ++i) {
        mem.unforwardedWrite(0x1000 + Addr(i) * 0x1000,
                             0x1000 + Addr(i + 1) * 0x1000, true);
    }
    mem.rawWriteWord(0x1000 + Addr(hops) * 0x1000, terminal_payload);
}

TEST(FaultSpecParse, FullGrammar)
{
    const auto specs = FaultInjector::parse(
        "cycle@resolve:nth=100;allocfail@alloc:nth=5,count=2;"
        "truncate@relocate:hop=3");
    ASSERT_EQ(specs.size(), 3u);

    EXPECT_EQ(specs[0].kind, FaultKind::cycle);
    EXPECT_EQ(specs[0].site, FaultSite::resolve);
    EXPECT_EQ(specs[0].nth, 100u);
    EXPECT_EQ(specs[0].count, 1u);

    EXPECT_EQ(specs[1].kind, FaultKind::alloc_fail);
    EXPECT_EQ(specs[1].site, FaultSite::alloc);
    EXPECT_EQ(specs[1].nth, 5u);
    EXPECT_EQ(specs[1].count, 2u);

    EXPECT_EQ(specs[2].kind, FaultKind::truncate);
    EXPECT_EQ(specs[2].site, FaultSite::relocate);
    EXPECT_EQ(specs[2].hop, 3u);
}

TEST(FaultSpecParse, Defaults)
{
    const auto specs = FaultInjector::parse("bitflip@resolve");
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].nth, 1u);
    EXPECT_EQ(specs[0].count, 1u);
    EXPECT_EQ(specs[0].hop, 0u);
}

TEST(FaultSpecParse, RejectsMalformedSpecs)
{
    EXPECT_THROW(FaultInjector::parse("bitflip"), std::invalid_argument);
    EXPECT_THROW(FaultInjector::parse("gamma@resolve"),
                 std::invalid_argument);
    EXPECT_THROW(FaultInjector::parse("bitflip@nowhere"),
                 std::invalid_argument);
    EXPECT_THROW(FaultInjector::parse("bitflip@resolve:nth"),
                 std::invalid_argument);
    EXPECT_THROW(FaultInjector::parse("bitflip@resolve:nth=0"),
                 std::invalid_argument);
    EXPECT_THROW(FaultInjector::parse("bitflip@resolve:bogus=1"),
                 std::invalid_argument);
}

TEST(FaultInjector, ChainKindsRejectedAtAllocSite)
{
    FaultInjector inj;
    EXPECT_THROW(inj.armSpec("cycle@alloc"), std::invalid_argument);
    EXPECT_NO_THROW(inj.armSpec("allocfail@alloc"));
    EXPECT_NO_THROW(inj.armSpec("allocfail@relocate"));
}

TEST(FaultInjector, NthCountsEligibleEvents)
{
    FaultInjector inj;
    inj.armSpec("allocfail@alloc:nth=3");
    EXPECT_FALSE(inj.shouldFail(FaultSite::alloc));
    EXPECT_FALSE(inj.shouldFail(FaultSite::alloc));
    EXPECT_TRUE(inj.shouldFail(FaultSite::alloc));
    // count=1 (default): exhausted after one firing.
    EXPECT_FALSE(inj.shouldFail(FaultSite::alloc));
    EXPECT_EQ(inj.fired(), 1u);
}

TEST(FaultInjector, CountZeroFiresForever)
{
    FaultInjector inj;
    inj.armSpec("allocfail@alloc:count=0");
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(inj.shouldFail(FaultSite::alloc));
    EXPECT_EQ(inj.fired(), 5u);
}

TEST(FaultInjector, SitesAreIndependent)
{
    FaultInjector inj;
    inj.armSpec("allocfail@relocate");
    EXPECT_TRUE(inj.armedAt(FaultSite::relocate));
    EXPECT_FALSE(inj.armedAt(FaultSite::alloc));
    EXPECT_FALSE(inj.shouldFail(FaultSite::alloc));
    EXPECT_TRUE(inj.shouldFail(FaultSite::relocate));
    // Exhausted faults no longer count as armed.
    EXPECT_FALSE(inj.armedAt(FaultSite::relocate));
}

TEST(FaultInjector, BitFlipForgesTerminalWord)
{
    TaggedMemory mem;
    buildChain(mem, 2, /*terminal_payload=*/0x77);
    FaultInjector inj;
    const Addr victim = inj.injectBitFlip(mem, 0x1000);
    EXPECT_EQ(victim, 0x3000u);
    EXPECT_TRUE(mem.fbit(0x3000));
    EXPECT_EQ(mem.rawReadWord(0x3000), 0x77u); // payload untouched
}

TEST(FaultInjector, TruncationCutsRequestedHop)
{
    TaggedMemory mem;
    buildChain(mem, 3);
    FaultInjector inj;
    const Addr victim = inj.injectTruncation(mem, 0x1000, /*hop=*/2);
    EXPECT_EQ(victim, 0x2000u);
    EXPECT_FALSE(mem.fbit(0x2000));
    EXPECT_EQ(mem.rawReadWord(0x2000), 0x3000u); // payload survives
    // The chain now ends early.
    EXPECT_TRUE(mem.fbit(0x1000));
    EXPECT_FALSE(mem.fbit(0x2000));
}

TEST(FaultInjector, CycleRedirectsLastForwardingWord)
{
    TaggedMemory mem;
    buildChain(mem, 3);
    FaultInjector inj;
    const Addr victim = inj.injectCycle(mem, 0x1000);
    EXPECT_EQ(victim, 0x3000u);
    EXPECT_TRUE(mem.fbit(0x3000));
    EXPECT_EQ(mem.rawReadWord(0x3000), 0x1000u);
}

TEST(FaultInjector, CycleOnUnforwardedWordSelfLoops)
{
    TaggedMemory mem;
    mem.rawWriteWord(0x1000, 99);
    FaultInjector inj;
    const Addr victim = inj.injectCycle(mem, 0x1000);
    EXPECT_EQ(victim, 0x1000u);
    EXPECT_TRUE(mem.fbit(0x1000));
    EXPECT_EQ(mem.rawReadWord(0x1000), 0x1000u);
}

TEST(FaultInjector, RepairRestoresExactPreFaultState)
{
    TaggedMemory mem;
    buildChain(mem, 3, /*terminal_payload=*/0xabcd);
    FaultInjector inj;
    inj.injectBitFlip(mem, 0x1000);
    inj.injectTruncation(mem, 0x1000, 1);
    inj.injectCycle(mem, 0x1000);
    EXPECT_EQ(inj.fired(), 3u);
    ASSERT_EQ(inj.log().size(), 3u);

    inj.repair(mem);
    EXPECT_TRUE(inj.log().empty());
    EXPECT_EQ(inj.fired(), 3u); // lifetime counter survives repair
    for (unsigned i = 0; i < 3; ++i) {
        const Addr a = 0x1000 + Addr(i) * 0x1000;
        EXPECT_TRUE(mem.fbit(a)) << std::hex << a;
        EXPECT_EQ(mem.rawReadWord(a), a + 0x1000);
    }
    EXPECT_FALSE(mem.fbit(0x4000));
    EXPECT_EQ(mem.rawReadWord(0x4000), 0xabcdu);
}

TEST(FaultInjector, DeterministicAcrossRuns)
{
    // Same seed, same chain, random hop selection: identical victims.
    std::vector<Addr> first, second;
    for (int run = 0; run < 2; ++run) {
        TaggedMemory mem;
        buildChain(mem, 8);
        FaultInjector inj(/*seed=*/1234);
        auto &out = run == 0 ? first : second;
        for (int i = 0; i < 4; ++i) {
            out.push_back(inj.injectTruncation(mem, 0x1000, /*hop=*/0));
            inj.repair(mem);
        }
    }
    EXPECT_EQ(first, second);
}

TEST(FaultInjector, CorruptChainAppliesArmedFaultAtSite)
{
    TaggedMemory mem;
    buildChain(mem, 2);
    FaultInjector inj;
    inj.armSpec("cycle@resolve:nth=2");
    inj.corruptChain(mem, 0x1000, FaultSite::resolve); // event 1: no fire
    EXPECT_EQ(inj.fired(), 0u);
    inj.corruptChain(mem, 0x1000, FaultSite::relocate); // wrong site
    EXPECT_EQ(inj.fired(), 0u);
    inj.corruptChain(mem, 0x1000, FaultSite::resolve); // event 2: fires
    EXPECT_EQ(inj.fired(), 1u);
    EXPECT_EQ(inj.log().back().kind, FaultKind::cycle);
    EXPECT_EQ(inj.log().back().site, FaultSite::resolve);
    EXPECT_EQ(mem.rawReadWord(0x2000), 0x1000u);
}

TEST(FaultSpecParse, MarkerKindsAndFreeSite)
{
    const auto specs =
        FaultInjector::parse("uaf@free:nth=3,count=0;oob@alloc:nth=5");
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].kind, FaultKind::use_after_free);
    EXPECT_EQ(specs[0].site, FaultSite::free);
    EXPECT_EQ(specs[0].nth, 3u);
    EXPECT_EQ(specs[0].count, 0u);
    EXPECT_EQ(specs[1].kind, FaultKind::oob);
    EXPECT_EQ(specs[1].site, FaultSite::alloc);
}

TEST(FaultSpecParse, EmptySegmentsAreSkipped)
{
    EXPECT_TRUE(FaultInjector::parse("").empty());
    EXPECT_TRUE(FaultInjector::parse(";;").empty());
    const auto specs = FaultInjector::parse(";bitflip@resolve;");
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].kind, FaultKind::bit_flip);
}

TEST(FaultSpecParse, ErrorMessagesNameTheOffendingToken)
{
    const auto message = [](const std::string &spec) {
        try {
            FaultInjector::parse(spec);
        } catch (const std::invalid_argument &e) {
            return std::string(e.what());
        }
        return std::string();
    };
    EXPECT_NE(message("bitflip@nowhere").find("unknown fault site "
                                             "'nowhere'"),
              std::string::npos);
    EXPECT_NE(message("gamma@resolve").find("unknown fault kind 'gamma'"),
              std::string::npos);
    EXPECT_NE(message("bitflip").find("missing '@site'"),
              std::string::npos);
    EXPECT_NE(message("bitflip@resolve:nth=0").find("nth must be >= 1"),
              std::string::npos);
    EXPECT_NE(message("bitflip@resolve:nth").find("not key=value"),
              std::string::npos);
}

TEST(FaultSpecParse, ParamAccumulationAcrossKeys)
{
    // All three params on one spec, in any order, values in hex or dec.
    const auto specs =
        FaultInjector::parse("truncate@relocate:count=4,hop=0x2,nth=7");
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].nth, 7u);
    EXPECT_EQ(specs[0].count, 4u);
    EXPECT_EQ(specs[0].hop, 2u);
}

TEST(FaultInjector, ChainKindsRejectedAtFreeSite)
{
    FaultInjector inj;
    try {
        inj.armSpec("cycle@free");
        FAIL() << "cycle@free must be rejected";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "chain faults cannot be armed at the free site"),
                  std::string::npos);
    }
    // Marker kinds are selection events, valid anywhere.
    EXPECT_NO_THROW(inj.armSpec("uaf@free"));
    EXPECT_NO_THROW(inj.armSpec("oob@alloc"));
}

TEST(FaultInjector, TriggersHonoursNthAndCount)
{
    FaultInjector inj;
    inj.armSpec("uaf@free:nth=2,count=2");
    EXPECT_FALSE(inj.triggers(FaultSite::free, FaultKind::use_after_free));
    EXPECT_TRUE(inj.triggers(FaultSite::free, FaultKind::use_after_free));
    EXPECT_TRUE(inj.triggers(FaultSite::free, FaultKind::use_after_free));
    EXPECT_FALSE(inj.triggers(FaultSite::free, FaultKind::use_after_free));
    EXPECT_EQ(inj.fired(), 2u);
    EXPECT_EQ(inj.log().back().kind, FaultKind::use_after_free);
    EXPECT_EQ(inj.log().back().site, FaultSite::free);
}

TEST(FaultInjector, TriggersZeroCountSelectsEveryEvent)
{
    FaultInjector inj;
    inj.armSpec("oob@alloc:count=0");
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(inj.triggers(FaultSite::alloc, FaultKind::oob));
    // Wrong site or wrong kind never matches.
    EXPECT_FALSE(inj.triggers(FaultSite::free, FaultKind::oob));
    EXPECT_FALSE(
        inj.triggers(FaultSite::alloc, FaultKind::use_after_free));
}

TEST(FaultInjector, MarkersNeverCorruptMemory)
{
    TaggedMemory mem;
    buildChain(mem, 3);
    FaultInjector inj;
    inj.armSpec("uaf@free:count=0;oob@alloc:count=0");
    // corruptChain must ignore marker kinds entirely: no firings, no
    // heap mutation.
    inj.corruptChain(mem, 0x1000, FaultSite::resolve);
    EXPECT_EQ(inj.fired(), 0u);
    EXPECT_EQ(mem.rawReadWord(0x1000), 0x2000u);
    EXPECT_TRUE(mem.fbit(0x1000));
    // repair() after marker firings is a no-op, not a crash.
    EXPECT_TRUE(inj.triggers(FaultSite::alloc, FaultKind::oob));
    inj.repair(mem);
    EXPECT_EQ(mem.rawReadWord(0x3000), 0x4000u);
}

} // namespace
} // namespace memfwd
