/** @file Unit tests for the forwarding engine — the paper's mechanism. */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "core/cycle_check.hh"
#include "core/forwarding_engine.hh"
#include "mem/tagged_memory.hh"

namespace memfwd
{
namespace
{

struct Rig
{
    TaggedMemory mem;
    MemoryHierarchy hierarchy{HierarchyConfig{}};
    ForwardingEngine engine{mem, hierarchy, ForwardingConfig{}};

    explicit Rig(ForwardingConfig cfg = {})
        : engine(mem, hierarchy, cfg)
    {}
};

TEST(ForwardingEngine, NonForwardedIsFree)
{
    Rig rig;
    const WalkResult w = rig.engine.resolve(0x1004, AccessType::load, 10);
    EXPECT_EQ(w.final_addr, 0x1004u);
    EXPECT_EQ(w.hops, 0u);
    EXPECT_EQ(w.ready, 10u);
    EXPECT_EQ(w.forward_cycles, 0u);
    EXPECT_EQ(rig.engine.stats().walks, 0u);
}

TEST(ForwardingEngine, SingleHopPreservesByteOffset)
{
    // The Figure 1 example: a 32-bit subword at 0804 forwards to 5804.
    Rig rig;
    rig.engine.forwardWord(0x0800, 0x5800);
    const WalkResult w = rig.engine.resolve(0x0804, AccessType::load, 0);
    EXPECT_EQ(w.final_addr, 0x5804u);
    EXPECT_EQ(w.hops, 1u);
    EXPECT_GT(w.forward_cycles, 0u);
}

TEST(ForwardingEngine, ForwardWordCopiesPayload)
{
    Rig rig;
    rig.mem.rawWriteWord(0x0800, 47);
    rig.engine.forwardWord(0x0800, 0x5800);
    EXPECT_EQ(rig.mem.rawReadWord(0x5800), 47u);
    EXPECT_EQ(rig.mem.rawReadWord(0x0800), 0x5800u);
    EXPECT_TRUE(rig.mem.fbit(0x0800));
    EXPECT_FALSE(rig.mem.fbit(0x5800));
}

TEST(ForwardingEngine, ChainOfArbitraryLength)
{
    Rig rig;
    // 0x1000 -> 0x2000 -> 0x3000 -> 0x4000.
    rig.mem.rawWriteWord(0x1000, 123);
    rig.engine.forwardWord(0x1000, 0x2000);
    rig.engine.forwardWord(0x2000, 0x3000);
    rig.engine.forwardWord(0x3000, 0x4000);
    const WalkResult w = rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_EQ(w.final_addr, 0x4000u);
    EXPECT_EQ(w.hops, 3u);
    EXPECT_EQ(rig.mem.rawReadWord(0x4000), 123u);
}

TEST(ForwardingEngine, HopsPolluteTheCache)
{
    // Section 5.4: dereferencing a forwarding chain touches the old
    // locations, keeping them live in the cache.
    Rig rig;
    rig.engine.forwardWord(0x1000, 0x9000);
    rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_TRUE(rig.hierarchy.l1d().contains(0x1000));
    // The final location is NOT accessed by the walk itself.
    EXPECT_FALSE(rig.hierarchy.l1d().contains(0x9000));
}

TEST(ForwardingEngine, TimingChargesEachHop)
{
    Rig rig;
    rig.engine.forwardWord(0x1000, 0x2000);
    rig.engine.forwardWord(0x2000, 0x3000);
    const WalkResult one_hop_warm = [&] {
        rig.engine.resolve(0x1000, AccessType::load, 0); // warm caches
        return rig.engine.resolve(0x1000, AccessType::load, 1000);
    }();
    // Two hops, warm: 2 x (hit latency + hop cost).
    const auto &cfg = rig.engine.config();
    const Cycles per_hop =
        rig.hierarchy.config().l1d.hit_latency + cfg.hop_cost;
    EXPECT_EQ(one_hop_warm.forward_cycles, 2 * per_hop);
}

TEST(ForwardingEngine, ExceptionModeAddsDispatchCost)
{
    ForwardingConfig cfg;
    cfg.mode = ForwardingConfig::Mode::exception;
    cfg.exception_cost = 30;
    Rig rig(cfg);
    rig.engine.forwardWord(0x1000, 0x2000);
    rig.engine.resolve(0x1000, AccessType::load, 0); // warm
    const WalkResult w = rig.engine.resolve(0x1000, AccessType::load, 500);
    EXPECT_GE(w.forward_cycles, 30u);
}

TEST(ForwardingEngine, PerfectModeIsFreeAndClean)
{
    ForwardingConfig cfg;
    cfg.mode = ForwardingConfig::Mode::perfect;
    Rig rig(cfg);
    rig.mem.rawWriteWord(0x1000, 55);
    rig.engine.forwardWord(0x1000, 0x2000);
    const WalkResult w = rig.engine.resolve(0x1004, AccessType::load, 77);
    EXPECT_EQ(w.final_addr, 0x2004u);
    EXPECT_EQ(w.ready, 77u);
    EXPECT_EQ(w.forward_cycles, 0u);
    // No pollution: the old location was never pulled into the cache.
    EXPECT_FALSE(rig.hierarchy.l1d().contains(0x1000));
    // Perfect mode reports no walks (nothing was "forwarded").
    EXPECT_EQ(rig.engine.stats().walks, 0u);
}

TEST(ForwardingEngine, HopHistogramRecorded)
{
    Rig rig;
    rig.engine.forwardWord(0x1000, 0x2000);
    rig.engine.resolve(0x1000, AccessType::load, 0);
    rig.engine.resolve(0x3000, AccessType::load, 0);
    const auto &h = rig.engine.stats().hop_histogram;
    ASSERT_GE(h.size(), 2u);
    EXPECT_EQ(h[0], 1u);
    EXPECT_EQ(h[1], 1u);
}

TEST(ForwardingEngine, LongAcyclicChainIsFalseAlarm)
{
    ForwardingConfig cfg;
    cfg.hop_limit = 4;
    Rig rig(cfg);
    // Build a 10-hop chain: longer than the limit but acyclic.
    for (unsigned i = 0; i < 10; ++i)
        rig.engine.forwardWord(0x1000 + i * 0x100, 0x1000 + (i + 1) * 0x100);
    const WalkResult w = rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_EQ(w.final_addr, 0x1000u + 10 * 0x100);
    EXPECT_EQ(w.hops, 10u);
    EXPECT_GE(rig.engine.stats().false_alarms, 1u);
    EXPECT_EQ(rig.engine.stats().cycles_detected, 0u);
    // The accurate check's software cost was charged.
    EXPECT_GE(w.forward_cycles, cfg.cycle_check_cost);
}

TEST(ForwardingEngine, TrueCycleThrows)
{
    ForwardingConfig cfg;
    cfg.hop_limit = 4;
    Rig rig(cfg);
    // 0x1000 -> 0x2000 -> 0x1000 (software bug).
    rig.mem.unforwardedWrite(0x1000, 0x2000, true);
    rig.mem.unforwardedWrite(0x2000, 0x1000, true);
    EXPECT_THROW(rig.engine.resolve(0x1000, AccessType::load, 0),
                 ForwardingCycleError);
    EXPECT_EQ(rig.engine.stats().cycles_detected, 1u);
}

TEST(ForwardingEngine, PerfectModeStillDetectsCycles)
{
    ForwardingConfig cfg;
    cfg.mode = ForwardingConfig::Mode::perfect;
    cfg.hop_limit = 4;
    Rig rig(cfg);
    rig.mem.unforwardedWrite(0x1000, 0x1000, true);
    EXPECT_THROW(rig.engine.resolve(0x1000, AccessType::load, 0),
                 ForwardingCycleError);
}

TEST(ForwardingEngine, TrapsDeliveredOnForwarding)
{
    Rig rig;
    rig.engine.forwardWord(0x1000, 0x2000);
    unsigned fired = 0;
    TrapInfo seen{};
    rig.engine.traps().install([&](const TrapInfo &info) {
        ++fired;
        seen = info;
        return TrapAction::resume;
    });
    rig.engine.resolve(0x1004, AccessType::load, 0, /*site=*/42,
                       /*pointer_slot=*/0x7000);
    EXPECT_EQ(fired, 1u);
    EXPECT_EQ(seen.site, 42u);
    EXPECT_EQ(seen.initial_addr, 0x1004u);
    EXPECT_EQ(seen.final_addr, 0x2004u);
    EXPECT_EQ(seen.hops, 1u);
    EXPECT_EQ(seen.pointer_slot, 0x7000u);
}

TEST(ForwardingEngine, NoTrapWithoutForwarding)
{
    Rig rig;
    unsigned fired = 0;
    rig.engine.traps().install([&](const TrapInfo &) {
        ++fired;
        return TrapAction::resume;
    });
    rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_EQ(fired, 0u);
}

TEST(ForwardingEngine, NoTrapForPrefetches)
{
    Rig rig;
    rig.engine.forwardWord(0x1000, 0x2000);
    unsigned fired = 0;
    rig.engine.traps().install([&](const TrapInfo &) {
        ++fired;
        return TrapAction::resume;
    });
    rig.engine.resolve(0x1000, AccessType::prefetch, 0);
    EXPECT_EQ(fired, 0u);
}

TEST(ForwardingEngineDeathTest, MisalignedRelocationRejected)
{
    Rig rig;
    EXPECT_DEATH(rig.engine.forwardWord(0x1001, 0x2000), "word-aligned");
    EXPECT_DEATH(rig.engine.forwardWord(0x1000, 0x2004), "word-aligned");
}

// Property sweep: for any chain length below the hop limit, resolve()
// terminates at the chain end with one hop per link.
class ChainLengthSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ChainLengthSweep, ResolvesFullChain)
{
    const unsigned len = GetParam();
    Rig rig;
    rig.mem.rawWriteWord(0x10000, 0xabcd);
    for (unsigned i = 0; i < len; ++i) {
        rig.engine.forwardWord(0x10000 + Addr(i) * 0x40,
                               0x10000 + Addr(i + 1) * 0x40);
    }
    const WalkResult w = rig.engine.resolve(0x10000, AccessType::load, 0);
    EXPECT_EQ(w.hops, len);
    EXPECT_EQ(w.final_addr, 0x10000 + Addr(len) * 0x40);
    EXPECT_EQ(rig.mem.rawReadWord(w.final_addr), 0xabcdu);
}

INSTANTIATE_TEST_SUITE_P(Lengths, ChainLengthSweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 5u, 8u, 15u));

} // namespace
} // namespace memfwd
