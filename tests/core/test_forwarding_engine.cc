/** @file Unit tests for the forwarding engine — the paper's mechanism. */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "core/cycle_check.hh"
#include "core/forwarding_engine.hh"
#include "mem/tagged_memory.hh"

namespace memfwd
{
namespace
{

struct Rig
{
    TaggedMemory mem;
    MemoryHierarchy hierarchy{HierarchyConfig{}};
    ForwardingEngine engine{mem, hierarchy, ForwardingConfig{}};

    explicit Rig(ForwardingConfig cfg = {})
        : engine(mem, hierarchy, cfg)
    {}
};

TEST(ForwardingEngine, NonForwardedIsFree)
{
    Rig rig;
    const WalkResult w = rig.engine.resolve(0x1004, AccessType::load, 10);
    EXPECT_EQ(w.final_addr, 0x1004u);
    EXPECT_EQ(w.hops, 0u);
    EXPECT_EQ(w.ready, 10u);
    EXPECT_EQ(w.forward_cycles, 0u);
    EXPECT_EQ(rig.engine.stats().walks, 0u);
}

TEST(ForwardingEngine, SingleHopPreservesByteOffset)
{
    // The Figure 1 example: a 32-bit subword at 0804 forwards to 5804.
    Rig rig;
    rig.engine.forwardWord(0x0800, 0x5800);
    const WalkResult w = rig.engine.resolve(0x0804, AccessType::load, 0);
    EXPECT_EQ(w.final_addr, 0x5804u);
    EXPECT_EQ(w.hops, 1u);
    EXPECT_GT(w.forward_cycles, 0u);
}

TEST(ForwardingEngine, ForwardWordCopiesPayload)
{
    Rig rig;
    rig.mem.rawWriteWord(0x0800, 47);
    rig.engine.forwardWord(0x0800, 0x5800);
    EXPECT_EQ(rig.mem.rawReadWord(0x5800), 47u);
    EXPECT_EQ(rig.mem.rawReadWord(0x0800), 0x5800u);
    EXPECT_TRUE(rig.mem.fbit(0x0800));
    EXPECT_FALSE(rig.mem.fbit(0x5800));
}

TEST(ForwardingEngine, ChainOfArbitraryLength)
{
    Rig rig;
    // 0x1000 -> 0x2000 -> 0x3000 -> 0x4000.
    rig.mem.rawWriteWord(0x1000, 123);
    rig.engine.forwardWord(0x1000, 0x2000);
    rig.engine.forwardWord(0x2000, 0x3000);
    rig.engine.forwardWord(0x3000, 0x4000);
    const WalkResult w = rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_EQ(w.final_addr, 0x4000u);
    EXPECT_EQ(w.hops, 3u);
    EXPECT_EQ(rig.mem.rawReadWord(0x4000), 123u);
}

TEST(ForwardingEngine, HopsPolluteTheCache)
{
    // Section 5.4: dereferencing a forwarding chain touches the old
    // locations, keeping them live in the cache.
    Rig rig;
    rig.engine.forwardWord(0x1000, 0x9000);
    rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_TRUE(rig.hierarchy.l1d().contains(0x1000));
    // The final location is NOT accessed by the walk itself.
    EXPECT_FALSE(rig.hierarchy.l1d().contains(0x9000));
}

TEST(ForwardingEngine, TimingChargesEachHop)
{
    Rig rig;
    rig.engine.forwardWord(0x1000, 0x2000);
    rig.engine.forwardWord(0x2000, 0x3000);
    const WalkResult one_hop_warm = [&] {
        rig.engine.resolve(0x1000, AccessType::load, 0); // warm caches
        return rig.engine.resolve(0x1000, AccessType::load, 1000);
    }();
    // Two hops, warm: 2 x (hit latency + hop cost).
    const auto &cfg = rig.engine.config();
    const Cycles per_hop =
        rig.hierarchy.config().l1d.hit_latency + cfg.hop_cost;
    EXPECT_EQ(one_hop_warm.forward_cycles, 2 * per_hop);
}

TEST(ForwardingEngine, ExceptionModeAddsDispatchCost)
{
    ForwardingConfig cfg;
    cfg.mode = ForwardingConfig::Mode::exception;
    cfg.exception_cost = 30;
    Rig rig(cfg);
    rig.engine.forwardWord(0x1000, 0x2000);
    rig.engine.resolve(0x1000, AccessType::load, 0); // warm
    const WalkResult w = rig.engine.resolve(0x1000, AccessType::load, 500);
    EXPECT_GE(w.forward_cycles, 30u);
}

TEST(ForwardingEngine, PerfectModeIsFreeAndClean)
{
    ForwardingConfig cfg;
    cfg.mode = ForwardingConfig::Mode::perfect;
    Rig rig(cfg);
    rig.mem.rawWriteWord(0x1000, 55);
    rig.engine.forwardWord(0x1000, 0x2000);
    const WalkResult w = rig.engine.resolve(0x1004, AccessType::load, 77);
    EXPECT_EQ(w.final_addr, 0x2004u);
    EXPECT_EQ(w.ready, 77u);
    EXPECT_EQ(w.forward_cycles, 0u);
    // No pollution: the old location was never pulled into the cache.
    EXPECT_FALSE(rig.hierarchy.l1d().contains(0x1000));
    // Perfect mode reports no walks (nothing was "forwarded").
    EXPECT_EQ(rig.engine.stats().walks, 0u);
}

TEST(ForwardingEngine, HopHistogramRecorded)
{
    Rig rig;
    rig.engine.forwardWord(0x1000, 0x2000);
    rig.engine.resolve(0x1000, AccessType::load, 0);
    rig.engine.resolve(0x3000, AccessType::load, 0);
    const auto &h = rig.engine.stats().hop_histogram;
    ASSERT_GE(h.size(), 2u);
    EXPECT_EQ(h[0], 1u);
    EXPECT_EQ(h[1], 1u);
}

TEST(ForwardingEngine, LongAcyclicChainIsFalseAlarm)
{
    ForwardingConfig cfg;
    cfg.hop_limit = 4;
    Rig rig(cfg);
    // Build a 10-hop chain: longer than the limit but acyclic.
    for (unsigned i = 0; i < 10; ++i)
        rig.engine.forwardWord(0x1000 + i * 0x100, 0x1000 + (i + 1) * 0x100);
    const WalkResult w = rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_EQ(w.final_addr, 0x1000u + 10 * 0x100);
    EXPECT_EQ(w.hops, 10u);
    EXPECT_GE(rig.engine.stats().false_alarms, 1u);
    EXPECT_EQ(rig.engine.stats().cycles_detected, 0u);
    // The accurate check's software cost was charged.
    EXPECT_GE(w.forward_cycles, cfg.cycle_check_cost);
}

TEST(ForwardingEngine, TrueCycleThrows)
{
    ForwardingConfig cfg;
    cfg.hop_limit = 4;
    Rig rig(cfg);
    // 0x1000 -> 0x2000 -> 0x1000 (software bug).
    rig.mem.unforwardedWrite(0x1000, 0x2000, true);
    rig.mem.unforwardedWrite(0x2000, 0x1000, true);
    EXPECT_THROW(rig.engine.resolve(0x1000, AccessType::load, 0),
                 ForwardingCycleError);
    EXPECT_EQ(rig.engine.stats().cycles_detected, 1u);
}

TEST(ForwardingEngine, PerfectModeStillDetectsCycles)
{
    ForwardingConfig cfg;
    cfg.mode = ForwardingConfig::Mode::perfect;
    cfg.hop_limit = 4;
    Rig rig(cfg);
    rig.mem.unforwardedWrite(0x1000, 0x1000, true);
    EXPECT_THROW(rig.engine.resolve(0x1000, AccessType::load, 0),
                 ForwardingCycleError);
}

TEST(ForwardingEngine, TrapsDeliveredOnForwarding)
{
    Rig rig;
    rig.engine.forwardWord(0x1000, 0x2000);
    unsigned fired = 0;
    TrapInfo seen{};
    rig.engine.traps().install([&](const TrapInfo &info) {
        ++fired;
        seen = info;
        return TrapAction::resume;
    });
    rig.engine.resolve(0x1004, AccessType::load, 0, /*site=*/42,
                       /*pointer_slot=*/0x7000);
    EXPECT_EQ(fired, 1u);
    EXPECT_EQ(seen.site, 42u);
    EXPECT_EQ(seen.initial_addr, 0x1004u);
    EXPECT_EQ(seen.final_addr, 0x2004u);
    EXPECT_EQ(seen.hops, 1u);
    EXPECT_EQ(seen.pointer_slot, 0x7000u);
}

TEST(ForwardingEngine, NoTrapWithoutForwarding)
{
    Rig rig;
    unsigned fired = 0;
    rig.engine.traps().install([&](const TrapInfo &) {
        ++fired;
        return TrapAction::resume;
    });
    rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_EQ(fired, 0u);
}

TEST(ForwardingEngine, NoTrapForPrefetches)
{
    Rig rig;
    rig.engine.forwardWord(0x1000, 0x2000);
    unsigned fired = 0;
    rig.engine.traps().install([&](const TrapInfo &) {
        ++fired;
        return TrapAction::resume;
    });
    rig.engine.resolve(0x1000, AccessType::prefetch, 0);
    EXPECT_EQ(fired, 0u);
}

TEST(ForwardingEngine, SelfLoopChainDetected)
{
    // forwardWord(a, a) is the tightest possible cycle: the word
    // forwards to itself.
    ForwardingConfig cfg;
    cfg.hop_limit = 4;
    Rig rig(cfg);
    rig.engine.forwardWord(0x1000, 0x1000);
    EXPECT_THROW(rig.engine.resolve(0x1000, AccessType::load, 0),
                 ForwardingCycleError);
    EXPECT_EQ(rig.engine.stats().cycles_detected, 1u);
    EXPECT_EQ(rig.engine.stats().false_alarms, 0u);
}

TEST(ForwardingEngine, TwoWordCycleCountsNoFalseAlarm)
{
    ForwardingConfig cfg;
    cfg.hop_limit = 4;
    Rig rig(cfg);
    rig.mem.unforwardedWrite(0x1000, 0x2000, true);
    rig.mem.unforwardedWrite(0x2000, 0x1000, true);
    try {
        rig.engine.resolve(0x1000, AccessType::load, 0);
        FAIL() << "cycle not detected";
    } catch (const ForwardingCycleError &e) {
        EXPECT_EQ(e.start(), 0x1000u);
        EXPECT_EQ(e.length(), 2u);
        EXPECT_EQ(e.policy(), "abort");
    }
    EXPECT_EQ(rig.engine.stats().cycles_detected, 1u);
    EXPECT_EQ(rig.engine.stats().false_alarms, 0u);
}

TEST(ForwardingEngine, ChainOfExactlyHopLimitIsNotAFalseAlarm)
{
    // hop_limit hops never overflow the counter: the accurate check
    // must not fire at all.
    ForwardingConfig cfg;
    cfg.hop_limit = 16;
    Rig rig(cfg);
    for (unsigned i = 0; i < cfg.hop_limit; ++i) {
        rig.engine.forwardWord(0x10000 + Addr(i) * 0x100,
                               0x10000 + Addr(i + 1) * 0x100);
    }
    const WalkResult w = rig.engine.resolve(0x10000, AccessType::load, 0);
    EXPECT_EQ(w.hops, cfg.hop_limit);
    EXPECT_EQ(rig.engine.stats().false_alarms, 0u);
    EXPECT_EQ(rig.engine.stats().cycles_detected, 0u);
}

TEST(ForwardingEngine, ChainOfHopLimitPlusOneIsExactlyOneFalseAlarm)
{
    ForwardingConfig cfg;
    cfg.hop_limit = 16;
    Rig rig(cfg);
    for (unsigned i = 0; i < cfg.hop_limit + 1; ++i) {
        rig.engine.forwardWord(0x10000 + Addr(i) * 0x100,
                               0x10000 + Addr(i + 1) * 0x100);
    }
    const WalkResult w = rig.engine.resolve(0x10000, AccessType::load, 0);
    EXPECT_EQ(w.hops, cfg.hop_limit + 1);
    EXPECT_EQ(rig.engine.stats().false_alarms, 1u);
    EXPECT_EQ(rig.engine.stats().cycles_detected, 0u);
}

TEST(ForwardingEngine, QuarantinePolicyPinsAtPreCycleAddress)
{
    ForwardingConfig cfg;
    cfg.hop_limit = 4;
    cfg.cycle_policy = CyclePolicy::quarantine;
    Rig rig(cfg);
    // Rho shape: 0x1000 -> 0x2000 -> 0x3000 -> 0x2000.  The pre-cycle
    // address (and so the pin) is 0x1000.
    rig.mem.unforwardedWrite(0x1000, 0x2000, true);
    rig.mem.unforwardedWrite(0x2000, 0x3000, true);
    rig.mem.unforwardedWrite(0x3000, 0x2000, true);

    const WalkResult w = rig.engine.resolve(0x1004, AccessType::load, 0);
    EXPECT_EQ(w.final_addr, 0x1004u); // pinned, offset preserved
    EXPECT_EQ(rig.engine.stats().cycles_detected, 1u);
    EXPECT_EQ(rig.engine.stats().cycles_quarantined, 1u);
    EXPECT_EQ(rig.engine.quarantinePin(0x1000), 0x1000u);

    // Later references resolve from the pin without re-walking.
    const WalkResult again =
        rig.engine.resolve(0x1004, AccessType::load, 0);
    EXPECT_EQ(again.final_addr, 0x1004u);
    EXPECT_EQ(again.hops, 0u);
    EXPECT_EQ(rig.engine.stats().quarantine_hits, 1u);
    EXPECT_EQ(rig.engine.stats().cycles_detected, 1u); // not re-detected
}

TEST(ForwardingEngine, TrapPolicyDeliversCycleContext)
{
    ForwardingConfig cfg;
    cfg.hop_limit = 4;
    cfg.cycle_policy = CyclePolicy::trap;
    Rig rig(cfg);
    rig.mem.unforwardedWrite(0x1000, 0x2000, true);
    rig.mem.unforwardedWrite(0x2000, 0x1000, true);

    TrapInfo seen{};
    unsigned fired = 0;
    rig.engine.traps().install([&](const TrapInfo &info) {
        ++fired;
        seen = info;
        return TrapAction::resume;
    });
    const WalkResult w =
        rig.engine.resolve(0x1000, AccessType::load, 0, /*site=*/9);
    EXPECT_EQ(fired, 1u);
    EXPECT_EQ(seen.site, 9u);
    EXPECT_EQ(seen.initial_addr, 0x1000u);
    EXPECT_EQ(seen.hops, 2u); // chain length the accurate check walked
    EXPECT_EQ(w.final_addr, seen.final_addr);
    EXPECT_EQ(rig.engine.stats().cycles_quarantined, 1u);
}

TEST(ForwardingEngine, TrapPolicyWithoutHandlerAborts)
{
    ForwardingConfig cfg;
    cfg.hop_limit = 4;
    cfg.cycle_policy = CyclePolicy::trap;
    Rig rig(cfg);
    rig.engine.forwardWord(0x1000, 0x1000);
    try {
        rig.engine.resolve(0x1000, AccessType::load, 0);
        FAIL() << "expected abort without a trap handler";
    } catch (const ForwardingCycleError &e) {
        EXPECT_EQ(e.policy(), "trap");
    }
}

TEST(ForwardingEngine, MisalignedPayloadIsCorruption)
{
    Rig rig;
    // A set forwarding bit over a misaligned payload can only be
    // corruption: legitimate relocation writes aligned targets.
    rig.mem.unforwardedWrite(0x1000, 0x2003, true);
    EXPECT_THROW(rig.engine.resolve(0x1000, AccessType::load, 0),
                 ForwardingIntegrityError);
    EXPECT_EQ(rig.engine.stats().corrupt_forwards, 1u);
}

TEST(ForwardingEngine, CorruptionQuarantinesAtCorruptWord)
{
    ForwardingConfig cfg;
    cfg.cycle_policy = CyclePolicy::quarantine;
    Rig rig(cfg);
    rig.engine.forwardWord(0x1000, 0x2000);
    rig.mem.unforwardedWrite(0x2000, 0x3001, true); // corrupt mid-chain
    const WalkResult w = rig.engine.resolve(0x1004, AccessType::load, 0);
    // Pinned at the corrupt word — the last trustworthy location.
    EXPECT_EQ(w.final_addr, 0x2004u);
    EXPECT_EQ(rig.engine.stats().corrupt_forwards, 1u);
    EXPECT_EQ(rig.engine.quarantinePin(0x1000), 0x2000u);
}

TEST(ForwardingEngine, ValidationCanBeDisabled)
{
    ForwardingConfig cfg;
    cfg.validate_targets = false;
    cfg.hop_limit = 4;
    Rig rig(cfg);
    // With validation off the walk follows the garbage payload; the
    // wordAlign keeps it from crashing and the chain just terminates.
    rig.mem.unforwardedWrite(0x1000, 0x2003, true);
    const WalkResult w = rig.engine.resolve(0x1000, AccessType::load, 0);
    EXPECT_EQ(w.final_addr, 0x2000u);
    EXPECT_EQ(rig.engine.stats().corrupt_forwards, 0u);
}

TEST(ForwardingEngine, ExceptionModeChargesBoundedRetryBackoff)
{
    ForwardingConfig cfg;
    cfg.mode = ForwardingConfig::Mode::exception;
    cfg.hop_limit = 2;
    cfg.retry_backoff_base = 16;
    Rig rig(cfg);
    // 10 acyclic hops with limit 2: checks fire after hops 3, 6, 9.
    for (unsigned i = 0; i < 10; ++i) {
        rig.engine.forwardWord(0x10000 + Addr(i) * 0x100,
                               0x10000 + Addr(i + 1) * 0x100);
    }
    const WalkResult w = rig.engine.resolve(0x10000, AccessType::load, 0);
    EXPECT_EQ(w.hops, 10u);
    EXPECT_EQ(rig.engine.stats().false_alarms, 3u);
    EXPECT_EQ(rig.engine.stats().handler_retries, 3u);
    // Exponential: 16 + 32 + 64.
    EXPECT_EQ(rig.engine.stats().backoff_cycles, 112u);
}

TEST(ForwardingEngine, ExceptionModeGivesUpAfterMaxRetries)
{
    ForwardingConfig cfg;
    cfg.mode = ForwardingConfig::Mode::exception;
    cfg.hop_limit = 2;
    cfg.max_handler_retries = 2;
    cfg.cycle_policy = CyclePolicy::quarantine;
    Rig rig(cfg);
    for (unsigned i = 0; i < 12; ++i) {
        rig.engine.forwardWord(0x10000 + Addr(i) * 0x100,
                               0x10000 + Addr(i + 1) * 0x100);
    }
    // The third check (after hop 9) exceeds max_handler_retries: the
    // handler gives up and the policy pins the reference mid-chain.
    const WalkResult w = rig.engine.resolve(0x10000, AccessType::load, 0);
    EXPECT_LT(w.hops, 12u);
    EXPECT_EQ(rig.engine.stats().handler_retries, 3u);
    EXPECT_EQ(rig.engine.stats().cycles_quarantined, 1u);
    EXPECT_NE(rig.engine.quarantinePin(0x10000), 0u);
}

TEST(ForwardingEngineDeathTest, MisalignedRelocationRejected)
{
    Rig rig;
    EXPECT_DEATH(rig.engine.forwardWord(0x1001, 0x2000), "word-aligned");
    EXPECT_DEATH(rig.engine.forwardWord(0x1000, 0x2004), "word-aligned");
}

// Property sweep: for any chain length below the hop limit, resolve()
// terminates at the chain end with one hop per link.
class ChainLengthSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ChainLengthSweep, ResolvesFullChain)
{
    const unsigned len = GetParam();
    Rig rig;
    rig.mem.rawWriteWord(0x10000, 0xabcd);
    for (unsigned i = 0; i < len; ++i) {
        rig.engine.forwardWord(0x10000 + Addr(i) * 0x40,
                               0x10000 + Addr(i + 1) * 0x40);
    }
    const WalkResult w = rig.engine.resolve(0x10000, AccessType::load, 0);
    EXPECT_EQ(w.hops, len);
    EXPECT_EQ(w.final_addr, 0x10000 + Addr(len) * 0x40);
    EXPECT_EQ(rig.mem.rawReadWord(w.final_addr), 0xabcdu);
}

INSTANTIATE_TEST_SUITE_P(Lengths, ChainLengthSweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 5u, 8u, 15u));

} // namespace
} // namespace memfwd
