/** @file Unit tests for the Rob graduation-slot model. */

#include <gtest/gtest.h>

#include "cpu/rob.hh"

namespace memfwd
{
namespace
{

TEST(Rob, FetchBandwidthFourPerCycle)
{
    Rob rob(4, 64);
    EXPECT_EQ(rob.dispatch(), 0u);
    EXPECT_EQ(rob.dispatch(), 0u);
    EXPECT_EQ(rob.dispatch(), 0u);
    EXPECT_EQ(rob.dispatch(), 0u);
    EXPECT_EQ(rob.dispatch(), 1u); // fifth spills to the next cycle
}

TEST(Rob, BusySlotsCountGraduations)
{
    Rob rob(4, 64);
    for (int i = 0; i < 8; ++i) {
        const Cycles d = rob.dispatch();
        rob.graduate(d + 1, WaitKind::none);
    }
    EXPECT_EQ(rob.stalls().busy, 8u);
    EXPECT_EQ(rob.instructions(), 8u);
}

TEST(Rob, StallSlotsAttributedToLoadMiss)
{
    Rob rob(4, 64);
    const Cycles d = rob.dispatch();
    // A load completing at cycle 100 stalls graduation until then.
    rob.graduate(100, WaitKind::load_miss);
    EXPECT_EQ(rob.currentCycle(), 100u);
    // All the empty slots from d+... to 100 are load-stall slots.
    EXPECT_EQ(rob.stalls().load_stall, (100 - d - 1) * 4 + 4 - 0);
    EXPECT_EQ(rob.stalls().busy, 1u);
    EXPECT_EQ(rob.stalls().store_stall, 0u);
}

TEST(Rob, StallSlotsAttributedToStoreMiss)
{
    Rob rob(4, 64);
    rob.dispatch();
    rob.graduate(50, WaitKind::store_miss);
    EXPECT_GT(rob.stalls().store_stall, 0u);
    EXPECT_EQ(rob.stalls().load_stall, 0u);
}

TEST(Rob, InstStallForNonMemoryWaits)
{
    Rob rob(4, 64);
    rob.dispatch();
    rob.graduate(10, WaitKind::none);
    EXPECT_GT(rob.stalls().inst_stall, 0u);
}

TEST(Rob, GraduationWidthLimit)
{
    Rob rob(2, 64);
    // Six instructions all ready at cycle 0: graduate 2 per cycle.
    for (int i = 0; i < 6; ++i) {
        const Cycles d = rob.dispatch();
        rob.graduate(d, WaitKind::none);
    }
    EXPECT_EQ(rob.currentCycle(), 2u); // cycles 0,1,2 hold 2 each
}

TEST(Rob, WindowLimitsRunahead)
{
    // Window of 8: instruction 8 cannot dispatch before instruction 0
    // retires.
    Rob rob(4, 8);
    Cycles d0 = rob.dispatch();
    rob.graduate(100, WaitKind::load_miss); // instr 0 retires at 100
    EXPECT_EQ(d0, 0u);
    for (int i = 1; i < 8; ++i) {
        rob.dispatch();
        rob.graduate(100, WaitKind::none);
    }
    // Ninth instruction: window slot frees only at cycle 100.
    EXPECT_GE(rob.dispatch(), 100u);
    rob.graduate(101, WaitKind::none);
}

TEST(Rob, SlotAccountingIsConsistent)
{
    Rob rob(4, 32);
    // Mixed stream.
    for (int i = 0; i < 100; ++i) {
        const Cycles d = rob.dispatch();
        const Cycles done = d + 1 + (i % 7 == 0 ? 25 : 0);
        rob.graduate(done,
                     i % 7 == 0 ? WaitKind::load_miss : WaitKind::none);
    }
    const StallStats &st = rob.stalls();
    // Total attributed slots never exceed cycles*width and cover all
    // but the unused slots of the final cycle.
    const std::uint64_t total = (rob.currentCycle() + 1) * 4;
    EXPECT_LE(st.totalSlots(), total);
    EXPECT_GE(st.totalSlots(), total - 4);
}

TEST(RobDeathTest, GraduateWithoutDispatch)
{
    Rob rob(4, 64);
    EXPECT_DEATH(rob.graduate(0, WaitKind::none), "matching dispatch");
}

TEST(RobDeathTest, BadGeometry)
{
    EXPECT_DEATH(Rob(0, 4), "geometry");
    EXPECT_DEATH(Rob(8, 4), "geometry");
}

TEST(Rob, AluBurstMatchesSingleOpsExactly)
{
    // aluBurst(n) is defined as n dispatch()/graduate(d+1) pairs; the
    // fast-forward engine retires whole batches through it, so any
    // divergence silently skews mixed fast-forward/timed cycle counts.
    // Interleave bursts with long-latency graduations to exercise
    // window pressure and stall attribution from non-trivial states.
    for (const auto &[width, window] : {std::pair<unsigned, unsigned>{4, 64},
                                        {1, 1}, {2, 8}, {8, 128}}) {
        Rob burst(width, window);
        Rob singles(width, window);

        std::uint64_t salt = 0x9e3779b97f4a7c15ull;
        for (int round = 0; round < 20; ++round) {
            salt = salt * 6364136223846793005ull + 1442695040888963407ull;
            const std::uint64_t n = salt % 300;

            burst.aluBurst(n);
            for (std::uint64_t i = 0; i < n; ++i) {
                const Cycles d = singles.dispatch();
                singles.graduate(d + 1, WaitKind::none);
            }

            // A straggling "load" with a big completion delay.
            const Cycles delay = 1 + salt % 97;
            burst.graduate(burst.dispatch() + delay, WaitKind::load_miss);
            singles.graduate(singles.dispatch() + delay,
                             WaitKind::load_miss);

            ASSERT_EQ(burst.currentCycle(), singles.currentCycle())
                << "w" << width << "/" << window << " round " << round;
            ASSERT_EQ(burst.instructions(), singles.instructions());
            ASSERT_EQ(burst.stalls().busy, singles.stalls().busy);
            ASSERT_EQ(burst.stalls().load_stall,
                      singles.stalls().load_stall);
            ASSERT_EQ(burst.stalls().inst_stall,
                      singles.stalls().inst_stall);
        }
    }
}

} // namespace
} // namespace memfwd
