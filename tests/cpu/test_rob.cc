/** @file Unit tests for the Rob graduation-slot model. */

#include <gtest/gtest.h>

#include "cpu/rob.hh"

namespace memfwd
{
namespace
{

TEST(Rob, FetchBandwidthFourPerCycle)
{
    Rob rob(4, 64);
    EXPECT_EQ(rob.dispatch(), 0u);
    EXPECT_EQ(rob.dispatch(), 0u);
    EXPECT_EQ(rob.dispatch(), 0u);
    EXPECT_EQ(rob.dispatch(), 0u);
    EXPECT_EQ(rob.dispatch(), 1u); // fifth spills to the next cycle
}

TEST(Rob, BusySlotsCountGraduations)
{
    Rob rob(4, 64);
    for (int i = 0; i < 8; ++i) {
        const Cycles d = rob.dispatch();
        rob.graduate(d + 1, WaitKind::none);
    }
    EXPECT_EQ(rob.stalls().busy, 8u);
    EXPECT_EQ(rob.instructions(), 8u);
}

TEST(Rob, StallSlotsAttributedToLoadMiss)
{
    Rob rob(4, 64);
    const Cycles d = rob.dispatch();
    // A load completing at cycle 100 stalls graduation until then.
    rob.graduate(100, WaitKind::load_miss);
    EXPECT_EQ(rob.currentCycle(), 100u);
    // All the empty slots from d+... to 100 are load-stall slots.
    EXPECT_EQ(rob.stalls().load_stall, (100 - d - 1) * 4 + 4 - 0);
    EXPECT_EQ(rob.stalls().busy, 1u);
    EXPECT_EQ(rob.stalls().store_stall, 0u);
}

TEST(Rob, StallSlotsAttributedToStoreMiss)
{
    Rob rob(4, 64);
    rob.dispatch();
    rob.graduate(50, WaitKind::store_miss);
    EXPECT_GT(rob.stalls().store_stall, 0u);
    EXPECT_EQ(rob.stalls().load_stall, 0u);
}

TEST(Rob, InstStallForNonMemoryWaits)
{
    Rob rob(4, 64);
    rob.dispatch();
    rob.graduate(10, WaitKind::none);
    EXPECT_GT(rob.stalls().inst_stall, 0u);
}

TEST(Rob, GraduationWidthLimit)
{
    Rob rob(2, 64);
    // Six instructions all ready at cycle 0: graduate 2 per cycle.
    for (int i = 0; i < 6; ++i) {
        const Cycles d = rob.dispatch();
        rob.graduate(d, WaitKind::none);
    }
    EXPECT_EQ(rob.currentCycle(), 2u); // cycles 0,1,2 hold 2 each
}

TEST(Rob, WindowLimitsRunahead)
{
    // Window of 8: instruction 8 cannot dispatch before instruction 0
    // retires.
    Rob rob(4, 8);
    Cycles d0 = rob.dispatch();
    rob.graduate(100, WaitKind::load_miss); // instr 0 retires at 100
    EXPECT_EQ(d0, 0u);
    for (int i = 1; i < 8; ++i) {
        rob.dispatch();
        rob.graduate(100, WaitKind::none);
    }
    // Ninth instruction: window slot frees only at cycle 100.
    EXPECT_GE(rob.dispatch(), 100u);
    rob.graduate(101, WaitKind::none);
}

TEST(Rob, SlotAccountingIsConsistent)
{
    Rob rob(4, 32);
    // Mixed stream.
    for (int i = 0; i < 100; ++i) {
        const Cycles d = rob.dispatch();
        const Cycles done = d + 1 + (i % 7 == 0 ? 25 : 0);
        rob.graduate(done,
                     i % 7 == 0 ? WaitKind::load_miss : WaitKind::none);
    }
    const StallStats &st = rob.stalls();
    // Total attributed slots never exceed cycles*width and cover all
    // but the unused slots of the final cycle.
    const std::uint64_t total = (rob.currentCycle() + 1) * 4;
    EXPECT_LE(st.totalSlots(), total);
    EXPECT_GE(st.totalSlots(), total - 4);
}

TEST(RobDeathTest, GraduateWithoutDispatch)
{
    Rob rob(4, 64);
    EXPECT_DEATH(rob.graduate(0, WaitKind::none), "matching dispatch");
}

TEST(RobDeathTest, BadGeometry)
{
    EXPECT_DEATH(Rob(0, 4), "geometry");
    EXPECT_DEATH(Rob(8, 4), "geometry");
}

} // namespace
} // namespace memfwd
