/** @file Unit tests for the composed CPU timing model. */

#include <gtest/gtest.h>

#include "cpu/ooo_cpu.hh"

namespace memfwd
{
namespace
{

TEST(OooCpu, AluThroughputIsWidthBound)
{
    OooCpu cpu;
    cpu.alu(400);
    // 400 single-cycle ops on a 4-wide machine: ~100 cycles.
    EXPECT_NEAR(double(cpu.cycles()), 100.0, 3.0);
    EXPECT_EQ(cpu.instructions(), 400u);
    EXPECT_EQ(cpu.stalls().busy, 400u);
}

TEST(OooCpu, MemPortsLimitIssueRate)
{
    OooParams p;
    p.mem_ports = 2;
    OooCpu cpu(p);
    // Six memory ops all ready at once: ports allow 2 per cycle.
    Cycles last = 0;
    for (int i = 0; i < 6; ++i) {
        const MemIssue mi = cpu.issueMem(0, true);
        last = mi.issue;
        cpu.finishLoad(mi, mi.issue + 1, 0, false, 0x100, 0x100, 1);
    }
    EXPECT_GE(last, 2u); // third pair issues at cycle >= 2
}

TEST(OooCpu, AddrDependenceDelaysIssue)
{
    OooCpu cpu;
    const MemIssue mi = cpu.issueMem(/*addr_ready=*/500, true);
    EXPECT_GE(mi.issue, 500u);
}

TEST(OooCpu, LoadLatencyAccounted)
{
    OooCpu cpu;
    const MemIssue mi = cpu.issueMem(0, true);
    const Cycles done =
        cpu.finishLoad(mi, mi.issue + 80, 0, true, 0x100, 0x100, 1);
    EXPECT_EQ(done, mi.issue + 80);
    EXPECT_GT(cpu.stalls().load_stall, 0u);
    EXPECT_NEAR(cpu.refLatency().avgLoadCycles(), 80.0, 0.5);
}

TEST(OooCpu, ForwardCyclesSplitOut)
{
    OooCpu cpu;
    const MemIssue mi = cpu.issueMem(0, true);
    cpu.finishLoad(mi, mi.issue + 100, /*forward_cycles=*/30, true,
                   0x100, 0x900, 1);
    const auto &rl = cpu.refLatency();
    EXPECT_EQ(rl.load_forward_cycles, 30u);
    EXPECT_EQ(rl.load_ordinary_cycles, 70u);
}

TEST(OooCpu, StoreBufferHidesStoreMissLatency)
{
    OooCpu cpu;
    // A single store miss does not stall graduation: the store buffer
    // absorbs it.
    const MemIssue mi = cpu.issueMem(0, false);
    cpu.finishStore(mi, mi.issue + 100, 0, true, 0x100, 0x100, 1);
    EXPECT_EQ(cpu.stalls().store_stall, 0u);
    EXPECT_LT(cpu.cycles(), 50u);
}

TEST(OooCpu, SaturatedStoreBufferStalls)
{
    OooParams p;
    p.store_buffer = 4;
    OooCpu cpu(p);
    // A long burst of store misses must eventually back-pressure.
    for (int i = 0; i < 64; ++i) {
        const MemIssue mi = cpu.issueMem(0, false);
        cpu.finishStore(mi, mi.issue + 100, 0, true, 0x100, 0x100, 1);
    }
    EXPECT_GT(cpu.stalls().store_stall, 0u);
    // The drain rate, not the issue rate, bounds the run: the last
    // stores retire near the first ones' 100-cycle completions.
    EXPECT_GT(cpu.cycles(), 100u);
}

TEST(OooCpu, NonBlockingOpsNeverStall)
{
    OooCpu cpu;
    for (int i = 0; i < 40; ++i) {
        const MemIssue mi = cpu.issueMem(0, true);
        cpu.finishNonBlocking(mi);
    }
    EXPECT_EQ(cpu.stalls().load_stall, 0u);
    EXPECT_LE(cpu.cycles(), 25u);
}

TEST(OooCpu, IndependentMissesOverlap)
{
    // Two independent loads missing for 100 cycles should finish at
    // roughly the same time (MLP), not serialized.
    OooCpu cpu;
    const MemIssue a = cpu.issueMem(0, true);
    const Cycles done_a =
        cpu.finishLoad(a, a.issue + 100, 0, true, 0x100, 0x100, 1);
    const MemIssue b = cpu.issueMem(0, true);
    const Cycles done_b =
        cpu.finishLoad(b, b.issue + 100, 0, true, 0x200, 0x200, 1);
    EXPECT_LE(done_b, done_a + 5);
}

TEST(OooCpu, DependentLoadsSerialize)
{
    // A pointer chase: the second load's address comes from the first.
    OooCpu cpu;
    const MemIssue a = cpu.issueMem(0, true);
    const Cycles done_a =
        cpu.finishLoad(a, a.issue + 100, 0, true, 0x100, 0x100, 1);
    const MemIssue b = cpu.issueMem(done_a, true);
    const Cycles done_b =
        cpu.finishLoad(b, b.issue + 100, 0, true, 0x200, 0x200, 1);
    EXPECT_GE(done_b, done_a + 100);
}

TEST(OooCpu, MisspeculationPenaltyApplied)
{
    OooParams p;
    p.misspec_penalty = 25;
    OooCpu cpu(p);
    // Store whose final address was forwarded...
    const MemIssue s = cpu.issueMem(0, false);
    cpu.finishStore(s, s.issue + 60, 40, true, 0x100, 0x900, 1);
    // ...and a load that issued before resolution and aliases finally.
    const MemIssue l = cpu.issueMem(0, true);
    const Cycles base = l.issue + 5;
    const Cycles done = cpu.finishLoad(l, base, 0, false, 0x300, 0x900, 1);
    EXPECT_EQ(done, base + 25);
    EXPECT_EQ(cpu.lsq().violations(), 1u);
}

} // namespace
} // namespace memfwd
