/** @file Unit tests for data-dependence speculation. */

#include <gtest/gtest.h>

#include "cpu/lsq.hh"

namespace memfwd
{
namespace
{

OooParams
specOn()
{
    OooParams p;
    p.dep_speculation = true;
    p.misspec_penalty = 12;
    return p;
}

OooParams
specOff()
{
    OooParams p;
    p.dep_speculation = false;
    return p;
}

TEST(Lsq, NoStoresNoSpeculation)
{
    Lsq lsq(specOn());
    EXPECT_EQ(lsq.checkLoad(5, 10, 0x100, 0x100, 1), 0u);
    EXPECT_EQ(lsq.speculations(), 0u);
}

TEST(Lsq, ResolvedStoreIsNotSpeculation)
{
    Lsq lsq(specOn());
    lsq.recordStore(1, 0x100, 0x100, 1, /*resolved=*/5);
    // Load issues at 10, after the store resolved: no speculation.
    EXPECT_EQ(lsq.checkLoad(2, 10, 0x200, 0x200, 1), 0u);
    EXPECT_EQ(lsq.speculations(), 0u);
}

TEST(Lsq, UnresolvedStoreCountsSpeculation)
{
    Lsq lsq(specOn());
    lsq.recordStore(1, 0x100, 0x100, 1, /*resolved=*/50);
    // Load issued at 10, before the store's final address was known.
    EXPECT_EQ(lsq.checkLoad(2, 10, 0x200, 0x200, 1), 0u);
    EXPECT_EQ(lsq.speculations(), 1u);
    EXPECT_EQ(lsq.violations(), 0u);
}

TEST(Lsq, ForwardedAliasIsViolation)
{
    Lsq lsq(specOn());
    // Store to initial 0x100 that was forwarded to final 0x900.
    lsq.recordStore(1, 0x100, 0x900, 1, /*resolved=*/50);
    // Load with a different initial address but the same final word:
    // the speculation "final == initial" was wrong.
    EXPECT_EQ(lsq.checkLoad(2, 10, 0x300, 0x900, 1), 12u);
    EXPECT_EQ(lsq.violations(), 1u);
}

TEST(Lsq, SameInitialAddressIsNotViolation)
{
    Lsq lsq(specOn());
    // Same initial word: classic store-to-load ordering handles it, no
    // forwarding surprise.
    lsq.recordStore(1, 0x100, 0x900, 1, 50);
    EXPECT_EQ(lsq.checkLoad(2, 10, 0x100, 0x900, 1), 0u);
    EXPECT_EQ(lsq.violations(), 0u);
}

TEST(Lsq, DisjointFinalsNotViolation)
{
    Lsq lsq(specOn());
    lsq.recordStore(1, 0x100, 0x900, 1, 50);
    EXPECT_EQ(lsq.checkLoad(2, 10, 0x300, 0x700, 1), 0u);
    EXPECT_EQ(lsq.violations(), 0u);
}

TEST(Lsq, MultiWordRangesOverlap)
{
    Lsq lsq(specOn());
    // Store covers final words [0x900, 0x910).
    lsq.recordStore(1, 0x100, 0x900, 2, 50);
    // Load of word 0x908 overlaps the store's final range.
    EXPECT_GT(lsq.checkLoad(2, 10, 0x300, 0x908, 1), 0u);
}

TEST(Lsq, OldStoresPrunedByWindow)
{
    OooParams p = specOn();
    p.window = 8;
    Lsq lsq(p);
    lsq.recordStore(1, 0x100, 0x900, 1, 1000);
    // Instruction 100 is far outside the window of store 1.
    EXPECT_EQ(lsq.checkLoad(100, 10, 0x300, 0x900, 1), 0u);
    EXPECT_EQ(lsq.speculations(), 0u);
}

TEST(Lsq, YoungerStoresIgnored)
{
    Lsq lsq(specOn());
    lsq.recordStore(10, 0x100, 0x900, 1, 50);
    // Load is OLDER than the store (seq 5 < 10): no interaction.
    EXPECT_EQ(lsq.checkLoad(5, 10, 0x300, 0x900, 1), 0u);
}

TEST(Lsq, ConservativeModeWaitsForResolution)
{
    Lsq lsq(specOff());
    lsq.recordStore(1, 0x100, 0x100, 1, 80);
    lsq.recordStore(2, 0x200, 0x200, 1, 120);
    // With speculation off, the load's issue is pushed to the last
    // older store's resolution.
    EXPECT_EQ(lsq.loadIssueCycle(3, 10), 120u);
}

TEST(Lsq, SpeculativeModeIssuesImmediately)
{
    Lsq lsq(specOn());
    lsq.recordStore(1, 0x100, 0x100, 1, 80);
    EXPECT_EQ(lsq.loadIssueCycle(2, 10), 10u);
}

TEST(Lsq, ConservativeModeNeverPenalizes)
{
    Lsq lsq(specOff());
    lsq.recordStore(1, 0x100, 0x900, 1, 80);
    EXPECT_EQ(lsq.checkLoad(2, 100, 0x300, 0x900, 1), 0u);
    EXPECT_EQ(lsq.violations(), 0u);
}

} // namespace
} // namespace memfwd
