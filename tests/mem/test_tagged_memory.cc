/** @file Unit tests for the tagged-memory substrate. */

#include <gtest/gtest.h>

#include "mem/tagged_memory.hh"

namespace memfwd
{
namespace
{

TEST(TaggedMemory, FreshMemoryReadsZeroWithClearBits)
{
    TaggedMemory mem;
    EXPECT_EQ(mem.rawReadWord(0), 0u);
    EXPECT_EQ(mem.rawReadWord(0x123456780), 0u);
    EXPECT_FALSE(mem.fbit(0));
    EXPECT_FALSE(mem.fbit(0xffffffff0ull));
    EXPECT_EQ(mem.pagesAllocated(), 0u);
}

TEST(TaggedMemory, WriteReadRoundTrip)
{
    TaggedMemory mem;
    mem.rawWriteWord(0x1000, 0xdeadbeefcafef00dull);
    EXPECT_EQ(mem.rawReadWord(0x1000), 0xdeadbeefcafef00dull);
    EXPECT_EQ(mem.rawReadWord(0x1008), 0u);
}

TEST(TaggedMemory, UnalignedAccessesHitContainingWord)
{
    TaggedMemory mem;
    mem.rawWriteWord(0x1000, 42);
    // Any address within the word reads the same payload.
    for (unsigned off = 0; off < 8; ++off)
        EXPECT_EQ(mem.rawReadWord(0x1000 + off), 42u);
}

TEST(TaggedMemory, ForwardingBitPerWord)
{
    TaggedMemory mem;
    mem.setFBit(0x2000, true);
    EXPECT_TRUE(mem.fbit(0x2000));
    EXPECT_TRUE(mem.fbit(0x2007)); // same word
    EXPECT_FALSE(mem.fbit(0x2008));
    mem.setFBit(0x2000, false);
    EXPECT_FALSE(mem.fbit(0x2000));
}

TEST(TaggedMemory, UnforwardedWriteAtomicPair)
{
    TaggedMemory mem;
    mem.unforwardedWrite(0x3000, 0x5800, true);
    EXPECT_EQ(mem.rawReadWord(0x3000), 0x5800u);
    EXPECT_TRUE(mem.fbit(0x3000));
    mem.unforwardedWrite(0x3000, 7, false);
    EXPECT_EQ(mem.rawReadWord(0x3000), 7u);
    EXPECT_FALSE(mem.fbit(0x3000));
}

TEST(TaggedMemory, SubwordReadsAndWrites)
{
    TaggedMemory mem;
    mem.rawWriteWord(0x4000, 0x1122334455667788ull);
    EXPECT_EQ(mem.readBytes(0x4000, 1), 0x88u);
    EXPECT_EQ(mem.readBytes(0x4001, 1), 0x77u);
    EXPECT_EQ(mem.readBytes(0x4000, 2), 0x7788u);
    EXPECT_EQ(mem.readBytes(0x4002, 2), 0x5566u);
    EXPECT_EQ(mem.readBytes(0x4000, 4), 0x55667788u);
    EXPECT_EQ(mem.readBytes(0x4004, 4), 0x11223344u);
    EXPECT_EQ(mem.readBytes(0x4000, 8), 0x1122334455667788ull);

    mem.writeBytes(0x4001, 1, 0xaa);
    EXPECT_EQ(mem.rawReadWord(0x4000), 0x112233445566aa88ull);
    mem.writeBytes(0x4004, 4, 0xddccbbaa);
    EXPECT_EQ(mem.rawReadWord(0x4000), 0xddccbbaa5566aa88ull);
}

TEST(TaggedMemory, SubwordWriteDoesNotTouchNeighbours)
{
    TaggedMemory mem;
    mem.rawWriteWord(0x5000, ~0ull);
    mem.writeBytes(0x5002, 2, 0);
    EXPECT_EQ(mem.rawReadWord(0x5000), 0xffffffff0000ffffull);
}

TEST(TaggedMemoryDeathTest, CrossWordAccessRejected)
{
    TaggedMemory mem;
    EXPECT_DEATH(mem.readBytes(0x1006, 4), "crosses word boundary");
    EXPECT_DEATH(mem.writeBytes(0x1007, 2, 0), "crosses word boundary");
}

TEST(TaggedMemoryDeathTest, BadSizeRejected)
{
    TaggedMemory mem;
    EXPECT_DEATH(mem.readBytes(0x1000, 3), "bad access size");
    EXPECT_DEATH(mem.readBytes(0x1000, 16), "bad access size");
}

TEST(TaggedMemory, InitializeRegionClearsTouchedPages)
{
    TaggedMemory mem;
    mem.unforwardedWrite(0x6000, 99, true);
    mem.unforwardedWrite(0x6100, 98, true);
    mem.initializeRegion(0x6000, 0x200);
    EXPECT_EQ(mem.rawReadWord(0x6000), 0u);
    EXPECT_FALSE(mem.fbit(0x6000));
    EXPECT_FALSE(mem.fbit(0x6100));
}

TEST(TaggedMemory, InitializeRegionLazyOnColdPages)
{
    TaggedMemory mem;
    // A huge init over untouched space must not materialize pages.
    mem.initializeRegion(0x100000000ull, Addr(1) << 30);
    EXPECT_EQ(mem.pagesAllocated(), 0u);
}

TEST(TaggedMemory, InitializeRegionPartialPage)
{
    TaggedMemory mem;
    mem.unforwardedWrite(0x7000, 1, true);
    mem.unforwardedWrite(0x7008, 2, true);
    mem.initializeRegion(0x7008, 8); // only the second word
    EXPECT_EQ(mem.rawReadWord(0x7000), 1u);
    EXPECT_TRUE(mem.fbit(0x7000));
    EXPECT_EQ(mem.rawReadWord(0x7008), 0u);
    EXPECT_FALSE(mem.fbit(0x7008));
}

TEST(TaggedMemory, SparsePagesAccounting)
{
    TaggedMemory mem;
    mem.rawWriteWord(0, 1);
    mem.rawWriteWord(TaggedMemory::pageBytes, 1);
    mem.rawWriteWord(100 * TaggedMemory::pageBytes, 1);
    EXPECT_EQ(mem.pagesAllocated(), 3u);
    EXPECT_EQ(mem.bytesAllocated(), 3u * TaggedMemory::pageBytes);
}

// Space overhead sanity: the forwarding bits cost 1 bit per 64-bit
// word, the paper's 1.5% figure.
TEST(TaggedMemory, TagOverheadMatchesPaper)
{
    const double overhead = 1.0 / 64.0;
    EXPECT_NEAR(overhead, 0.015, 0.002);
}

} // namespace
} // namespace memfwd
