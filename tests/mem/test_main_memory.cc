/** @file Unit tests for the DRAM timing/traffic model. */

#include <gtest/gtest.h>

#include "mem/main_memory.hh"

namespace memfwd
{
namespace
{

TEST(MainMemory, LatencyPlusBurst)
{
    MainMemory mem({.latency = 70, .bytesPerCycle = 8});
    // 32B transfer = 4 cycles of burst.
    EXPECT_EQ(mem.access(100, 32), 100 + 70 + 4);
}

TEST(MainMemory, CountsBytesAndAccesses)
{
    MainMemory mem;
    mem.access(0, 32);
    mem.access(0, 64);
    EXPECT_EQ(mem.bytesTransferred(), 96u);
    EXPECT_EQ(mem.accesses(), 2u);
}

TEST(MainMemory, ChannelSerializesBackToBackTransfers)
{
    MainMemory mem({.latency = 10, .bytesPerCycle = 8});
    const Cycles first = mem.access(0, 64);  // burst 8: channel busy 0-8
    const Cycles second = mem.access(0, 64); // starts at 8
    EXPECT_EQ(first, 0 + 10 + 8);
    EXPECT_EQ(second, 8 + 10 + 8);
}

TEST(MainMemory, IdleChannelStartsImmediately)
{
    MainMemory mem({.latency = 10, .bytesPerCycle = 8});
    mem.access(0, 32);
    // Long after the burst finished: no queueing delay.
    EXPECT_EQ(mem.access(1000, 32), 1000 + 10 + 4);
}

TEST(MainMemory, ClearStatsKeepsChannelState)
{
    MainMemory mem;
    mem.access(0, 128);
    mem.clearStats();
    EXPECT_EQ(mem.bytesTransferred(), 0u);
    EXPECT_EQ(mem.accesses(), 0u);
}

TEST(MainMemory, WiderChannelShortensBurst)
{
    MainMemory narrow({.latency = 0, .bytesPerCycle = 4});
    MainMemory wide({.latency = 0, .bytesPerCycle = 32});
    EXPECT_EQ(narrow.access(0, 128), 32u);
    EXPECT_EQ(wide.access(0, 128), 4u);
}

} // namespace
} // namespace memfwd
