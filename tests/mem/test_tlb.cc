/** @file Unit tests for the TLB reach model. */

#include <gtest/gtest.h>

#include "mem/tlb.hh"
#include "runtime/machine.hh"
#include "runtime/sim_allocator.hh"

namespace memfwd
{
namespace
{

TlbConfig
smallTlb(unsigned entries = 4)
{
    TlbConfig cfg;
    cfg.enabled = true;
    cfg.entries = entries;
    cfg.page_bytes = 4096;
    cfg.miss_penalty = 30;
    return cfg;
}

TEST(Tlb, FirstTouchWalks)
{
    Tlb tlb(smallTlb());
    EXPECT_EQ(tlb.access(0x1000, 100), 130u);
    EXPECT_EQ(tlb.access(0x1008, 200), 200u); // same page: hit
    EXPECT_EQ(tlb.misses(), 1u);
    EXPECT_EQ(tlb.hits(), 1u);
}

TEST(Tlb, LruEviction)
{
    Tlb tlb(smallTlb(2));
    tlb.access(0 * 4096, 0);
    tlb.access(1 * 4096, 0);
    tlb.access(0 * 4096, 0); // page 0 MRU
    tlb.access(2 * 4096, 0); // evicts page 1
    EXPECT_EQ(tlb.access(0 * 4096, 500), 500u);
    EXPECT_EQ(tlb.access(1 * 4096, 600), 630u); // was evicted
}

TEST(Tlb, FlushDropsEverything)
{
    Tlb tlb(smallTlb());
    tlb.access(0x1000, 0);
    tlb.flush();
    EXPECT_EQ(tlb.access(0x1000, 100), 130u);
}

TEST(Tlb, MissRate)
{
    Tlb tlb(smallTlb());
    tlb.access(0, 0);
    tlb.access(8, 0);
    tlb.access(16, 0);
    tlb.access(24, 0);
    EXPECT_DOUBLE_EQ(tlb.missRate(), 0.25);
    tlb.clearStats();
    EXPECT_DOUBLE_EQ(tlb.missRate(), 0.0);
}

TEST(TlbDeathTest, BadConfig)
{
    TlbConfig cfg = smallTlb();
    cfg.entries = 0;
    EXPECT_DEATH(Tlb t(cfg), "at least one entry");
    cfg = smallTlb();
    cfg.page_bytes = 1000;
    EXPECT_DEATH(Tlb t(cfg), "power of two");
}

TEST(TlbMachine, DisabledByDefaultAndFree)
{
    Machine m;
    m.access(Access::load(0x1000, 8));
    EXPECT_EQ(m.tlb().hits() + m.tlb().misses(), 0u);
}

TEST(TlbMachine, EnabledTlbChargesWalks)
{
    MachineConfig with, without;
    with.tlb = smallTlb(8);
    Machine a(with), b(without);

    // Touch 64 distinct pages, dependent chain: TLB walks serialize.
    Cycles da = 0, db = 0;
    for (unsigned p = 0; p < 64; ++p) {
        const Addr addr = 0x100000 + Addr(p) * 4096;
        da = a.access(Access::load(addr, 8, da)).ready;
        db = b.access(Access::load(addr, 8, db)).ready;
    }
    EXPECT_GT(a.cycles(), b.cycles());
    EXPECT_EQ(a.tlb().misses(), 64u);
}

TEST(TlbMachine, LinearizedDataNeedsFewerTranslations)
{
    // The page-footprint effect: scattered nodes thrash a small TLB,
    // packed nodes do not.
    MachineConfig mc;
    mc.tlb = smallTlb(8);

    auto touch = [](Machine &m, const std::vector<Addr> &addrs) {
        Cycles dep = 0;
        for (int pass = 0; pass < 3; ++pass)
            for (Addr a : addrs)
                dep = m.access(Access::load(a, 8, dep)).ready;
        return m.tlb().misses();
    };

    Machine scattered(mc), packed(mc);
    std::vector<Addr> far, near;
    for (unsigned i = 0; i < 64; ++i) {
        far.push_back(0x100000 + Addr(i) * 8192); // one node per page
        near.push_back(0x100000 + Addr(i) * 16);  // packed
    }
    const std::uint64_t misses_far = touch(scattered, far);
    const std::uint64_t misses_near = touch(packed, near);
    EXPECT_GT(misses_far, 100u); // thrash: re-missed every pass
    EXPECT_LE(misses_near, 2u);
}

} // namespace
} // namespace memfwd
