/** @file Unit tests for the per-word metadata plane. */

#include <gtest/gtest.h>

#include <vector>

#include "mem/metadata_plane.hh"
#include "mem/tagged_memory.hh"

namespace memfwd
{
namespace
{

TEST(MetadataPlanePacking, RoundTripsFields)
{
    const MetadataPlane::Meta m =
        MetadataPlane::pack(/*object_id=*/0x1234, /*bounds_class=*/5,
                            /*quarantined=*/true);
    EXPECT_EQ(MetadataPlane::objectId(m), 0x1234u);
    EXPECT_EQ(MetadataPlane::boundsClass(m), 5u);
    EXPECT_TRUE(MetadataPlane::isQuarantined(m));

    const MetadataPlane::Meta live =
        MetadataPlane::pack(MetadataPlane::max_object_id, 0xff, false);
    EXPECT_EQ(MetadataPlane::objectId(live), MetadataPlane::max_object_id);
    EXPECT_EQ(MetadataPlane::boundsClass(live), 0xffu);
    EXPECT_FALSE(MetadataPlane::isQuarantined(live));
}

TEST(MetadataPlanePacking, BoundsClassIsCeilLog2)
{
    EXPECT_EQ(MetadataPlane::boundsClassFor(1), 0u);
    EXPECT_EQ(MetadataPlane::boundsClassFor(2), 1u);
    EXPECT_EQ(MetadataPlane::boundsClassFor(8), 3u);
    EXPECT_EQ(MetadataPlane::boundsClassFor(9), 4u);
    EXPECT_EQ(MetadataPlane::boundsClassFor(4096), 12u);
    EXPECT_EQ(MetadataPlane::boundsClassFor(4097), 13u);
}

TEST(MetadataPlane, UnsetWordsReadNone)
{
    MetadataPlane plane;
    EXPECT_EQ(plane.get(0x1000), MetadataPlane::none);
    EXPECT_EQ(plane.pagesAllocated(), 0u);
    // Reads never materialize pages.
    EXPECT_EQ(plane.get(0xdead000), MetadataPlane::none);
    EXPECT_EQ(plane.pagesAllocated(), 0u);
}

TEST(MetadataPlane, SetGetAcrossPages)
{
    MetadataPlane plane;
    const MetadataPlane::Meta m = MetadataPlane::pack(7, 3, true);
    plane.set(0x1000, m);
    plane.set(0x42000 + 8 * wordBytes, m);
    EXPECT_EQ(plane.get(0x1000), m);
    EXPECT_EQ(plane.get(0x42000 + 8 * wordBytes), m);
    EXPECT_EQ(plane.get(0x1008), MetadataPlane::none);
    EXPECT_EQ(plane.pagesAllocated(), 2u);
    EXPECT_EQ(plane.taggedWords(), 2u);
}

TEST(MetadataPlane, LastPageCacheSurvivesInterleavedPages)
{
    MetadataPlane plane;
    const MetadataPlane::Meta a = MetadataPlane::pack(1, 0, true);
    const MetadataPlane::Meta b = MetadataPlane::pack(2, 0, true);
    plane.set(0x1000, a);
    plane.set(0x9000, b);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(plane.get(0x1000), a);
        EXPECT_EQ(plane.get(0x9000), b);
        EXPECT_EQ(plane.get(0x5000), MetadataPlane::none);
    }
}

TEST(MetadataPlane, SetRangeCoversWholeObjectAndClearRangeUndoes)
{
    MetadataPlane plane;
    const MetadataPlane::Meta m = MetadataPlane::pack(9, 6, true);
    const Addr base = 0x2000 - 2 * wordBytes; // straddles a page edge
    plane.setRange(base, 8 * wordBytes, m);
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_EQ(plane.get(base + w * wordBytes), m);
    EXPECT_EQ(plane.get(base - wordBytes), MetadataPlane::none);
    EXPECT_EQ(plane.get(base + 8 * wordBytes), MetadataPlane::none);
    EXPECT_EQ(plane.taggedWords(), 8u);

    plane.clearRange(base, 8 * wordBytes);
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_EQ(plane.get(base + w * wordBytes), MetadataPlane::none);
    EXPECT_EQ(plane.taggedWords(), 0u);
}

TEST(MetadataPlane, ClearRangeSkipsUnmaterializedPages)
{
    MetadataPlane plane;
    plane.clearRange(0x100000, 16 * MetadataPlane::pageBytes);
    EXPECT_EQ(plane.pagesAllocated(), 0u);
}

TEST(MetadataPlane, ForEachTaggedWordWalksAscending)
{
    MetadataPlane plane;
    const MetadataPlane::Meta m = MetadataPlane::pack(3, 2, true);
    plane.set(0x9000, m);
    plane.set(0x1000, m);
    plane.set(0x1008, m);
    std::vector<Addr> seen;
    plane.forEachTaggedWord([&](Addr word, MetadataPlane::Meta meta) {
        seen.push_back(word);
        EXPECT_EQ(meta, m);
    });
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], 0x1000u);
    EXPECT_EQ(seen[1], 0x1008u);
    EXPECT_EQ(seen[2], 0x9000u);
}

TEST(TaggedMemoryPlane, EnableIsIdempotentAndOffByDefault)
{
    TaggedMemory mem;
    EXPECT_EQ(mem.metadataPlane(), nullptr);
    MetadataPlane &p1 = mem.enableMetadataPlane();
    MetadataPlane &p2 = mem.enableMetadataPlane();
    EXPECT_EQ(&p1, &p2);
    EXPECT_EQ(mem.metadataPlane(), &p1);
}

TEST(TaggedMemoryPlane, InitializeRegionClearsStaleMetadata)
{
    // A recycled quarantine slot must never inherit the dead object's
    // tag: initializeRegion (the allocator's fresh-memory sweep) clears
    // the plane over the region.
    TaggedMemory mem;
    MetadataPlane &plane = mem.enableMetadataPlane();
    plane.setRange(0x3000, 4 * wordBytes, MetadataPlane::pack(5, 5, true));
    mem.initializeRegion(0x3000, 4 * wordBytes);
    for (unsigned w = 0; w < 4; ++w)
        EXPECT_EQ(plane.get(0x3000 + w * wordBytes), MetadataPlane::none);
}

} // namespace
} // namespace memfwd
