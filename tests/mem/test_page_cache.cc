/** @file Unit tests for the out-of-core page-cache model. */

#include <gtest/gtest.h>

#include "mem/page_cache.hh"

namespace memfwd
{
namespace
{

TEST(PageCache, FirstTouchFaults)
{
    PageCache pc(4096, 4);
    EXPECT_TRUE(pc.access(0));
    EXPECT_FALSE(pc.access(8));     // same page
    EXPECT_FALSE(pc.access(4095));  // same page
    EXPECT_TRUE(pc.access(4096));   // next page
    EXPECT_EQ(pc.faults(), 2u);
    EXPECT_EQ(pc.accesses(), 4u);
}

TEST(PageCache, LruEviction)
{
    PageCache pc(4096, 2);
    pc.access(0 * 4096);
    pc.access(1 * 4096);
    pc.access(0 * 4096);     // page 0 now MRU
    pc.access(2 * 4096);     // evicts page 1 (LRU)
    EXPECT_FALSE(pc.access(0 * 4096));
    EXPECT_TRUE(pc.access(1 * 4096)); // was evicted
    EXPECT_EQ(pc.faults(), 4u);
}

TEST(PageCache, WorkingSetCount)
{
    PageCache pc(4096, 2);
    for (Addr p = 0; p < 10; ++p)
        pc.access(p * 4096);
    EXPECT_EQ(pc.pagesTouched(), 10u);
}

TEST(PageCache, SequentialStreamFaultsOncePerPage)
{
    PageCache pc(4096, 8);
    for (Addr a = 0; a < 64 * 1024; a += 32)
        pc.access(a);
    EXPECT_EQ(pc.faults(), 16u); // 64KB / 4KB
}

TEST(PageCache, ThrashingWhenSetTooSmall)
{
    // Cyclic sweep over N+1 pages with capacity N: every access faults
    // under LRU.
    PageCache pc(4096, 4);
    for (int round = 0; round < 3; ++round)
        for (Addr p = 0; p < 5; ++p)
            pc.access(p * 4096);
    EXPECT_EQ(pc.faults(), 15u);
}

TEST(PageCache, FaultCyclesScale)
{
    PageCache pc(4096, 2, 777);
    pc.access(0);
    pc.access(4096);
    EXPECT_EQ(pc.faultCycles(), 2u * 777);
}

TEST(PageCache, ClearStats)
{
    PageCache pc(4096, 2);
    pc.access(0);
    pc.clearStats();
    EXPECT_EQ(pc.faults(), 0u);
    EXPECT_EQ(pc.accesses(), 0u);
    EXPECT_EQ(pc.pagesTouched(), 0u);
    // Residency survives clearStats: page 0 still resident.
    EXPECT_FALSE(pc.access(0));
}

TEST(PageCacheDeathTest, BadConfig)
{
    EXPECT_DEATH(PageCache(1000, 4), "power of two");
    EXPECT_DEATH(PageCache(4096, 0), "nonempty");
}

} // namespace
} // namespace memfwd
