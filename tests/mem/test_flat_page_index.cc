/**
 * @file
 * Differential tests for the flat open-addressed page index.
 *
 * The index replaced the two-level paged lookup on the hot path of
 * every simulated reference, so it is held to a reference
 * implementation (std::unordered_map) under sparse, dense, and
 * adversarial key distributions, across growth, and through forEach.
 * The TaggedMemory-level tests exercise the integration: the one-entry
 * last-page cache must never serve a stale page, and forwarding-state
 * listeners must keep firing exactly as before the swap.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/random.hh"
#include "mem/flat_page_index.hh"
#include "mem/tagged_memory.hh"

namespace memfwd
{
namespace
{

/** Drive index and reference map with the same inserts, then compare. */
void
differential(const std::vector<Addr> &keys)
{
    FlatPageIndex index;
    std::unordered_map<Addr, FlatPageIndex::Value> ref;

    FlatPageIndex::Value next = 0;
    for (Addr k : keys) {
        if (ref.count(k))
            continue; // insert() forbids duplicates, as TaggedMemory does
        index.insert(k, next);
        ref.emplace(k, next);
        ++next;

        // Every key ever inserted stays findable across growth.
        ASSERT_EQ(index.size(), ref.size());
        ASSERT_GE(index.capacity() * 7, index.size() * 10)
            << "load factor above the 70% growth trigger";
    }

    for (const auto &[k, v] : ref)
        EXPECT_EQ(index.find(k), v) << "key " << k;

    // Absent probes: neighbors of present keys stress the probe chains.
    for (const auto &[k, v] : ref) {
        (void)v;
        for (Addr miss : {k + 1, k - 1, k ^ (Addr(1) << 40)}) {
            if (!ref.count(miss) && miss != FlatPageIndex::empty_key)
                EXPECT_EQ(index.find(miss), FlatPageIndex::no_value)
                    << "phantom key " << miss;
        }
    }

    // forEach visits exactly the reference's entries, once each.
    std::unordered_map<Addr, FlatPageIndex::Value> seen;
    index.forEach([&](Addr k, FlatPageIndex::Value v) {
        EXPECT_TRUE(seen.emplace(k, v).second) << "duplicate visit " << k;
    });
    EXPECT_EQ(seen, ref);
}

TEST(FlatPageIndex, EmptyIndexFindsNothing)
{
    FlatPageIndex index;
    EXPECT_EQ(index.size(), 0u);
    EXPECT_EQ(index.find(0), FlatPageIndex::no_value);
    EXPECT_EQ(index.find(12345), FlatPageIndex::no_value);
    index.forEach([](Addr, FlatPageIndex::Value) { FAIL(); });
}

TEST(FlatPageIndex, DenseSequentialKeys)
{
    // Page numbers of a contiguous heap: the common workload shape.
    std::vector<Addr> keys;
    for (Addr k = 0; k < 3000; ++k)
        keys.push_back(k);
    differential(keys);
}

TEST(FlatPageIndex, SparseRandomKeys)
{
    Rng rng(testSeed(0xf1a7));
    std::vector<Addr> keys;
    for (int i = 0; i < 2000; ++i)
        keys.push_back(rng.next() >> 12); // page numbers, top bits live
    differential(keys);
}

TEST(FlatPageIndex, AdversarialClusteredKeys)
{
    // Runs of consecutive keys at widely separated bases plus aliases
    // that differ only in bits above the table mask: long probe chains
    // before and after every growth step.
    std::vector<Addr> keys;
    for (Addr base : {Addr(0), Addr(1) << 20, Addr(1) << 44, Addr(1) << 51}) {
        for (Addr i = 0; i < 300; ++i) {
            keys.push_back(base + i);
            keys.push_back(base + i + (Addr(1) << 60));
        }
    }
    differential(keys);
}

TEST(FlatPageIndex, GrowthPreservesAllEntries)
{
    FlatPageIndex index;
    const std::size_t cap0 = index.capacity();
    std::size_t grows = 0;
    for (Addr k = 0; k < 10000; ++k) {
        const std::size_t before = index.capacity();
        index.insert(k * 7919, FlatPageIndex::Value(k));
        if (index.capacity() != before)
            ++grows;
    }
    EXPECT_GT(index.capacity(), cap0);
    EXPECT_GE(grows, 5u);
    for (Addr k = 0; k < 10000; ++k)
        ASSERT_EQ(index.find(k * 7919), FlatPageIndex::Value(k));
}

// ---------------------------------------------------------------------
// TaggedMemory on top of the flat index
// ---------------------------------------------------------------------

TEST(TaggedMemoryFlatIndex, SparseHeapMatchesModel)
{
    // Random word traffic over ~hundreds of far-apart pages, checked
    // against a plain map.  Alternating pages defeats the one-entry
    // last-page cache on nearly every access, so a stale-cache bug
    // cannot hide.
    Rng rng(testSeed(0x7a66));
    TaggedMemory mem;
    std::unordered_map<Addr, std::uint64_t> model;

    std::vector<Addr> pages;
    for (int i = 0; i < 300; ++i)
        pages.push_back((rng.next() >> 16) * TaggedMemory::pageBytes);

    for (int op = 0; op < 20000; ++op) {
        const Addr page = pages[rng.below(pages.size())];
        const Addr addr =
            page + rng.below(TaggedMemory::pageWords) * wordBytes;
        if (rng.below(2)) {
            const std::uint64_t v = rng.next();
            mem.rawWriteWord(addr, v);
            model[addr] = v;
        } else {
            const auto it = model.find(addr);
            ASSERT_EQ(mem.rawReadWord(addr),
                      it == model.end() ? 0u : it->second)
                << "addr " << addr;
        }
    }

    // Reads of never-touched pages still miss cleanly afterwards.
    EXPECT_EQ(mem.rawReadWord(Addr(1) << 61), 0u);
    EXPECT_FALSE(mem.fbit((Addr(1) << 61) + 8));
}

TEST(TaggedMemoryFlatIndex, LastPageCacheSurvivesMaterialization)
{
    TaggedMemory mem;
    const Addr a = 0x10000, b = 0x20000;

    // Prime the miss cache on page A, then materialize A via a write:
    // the following read must see the write, not the cached miss.
    EXPECT_EQ(mem.rawReadWord(a), 0u);
    mem.rawWriteWord(a, 111);
    EXPECT_EQ(mem.rawReadWord(a), 111u);

    // Ping-pong between pages; each switch must re-resolve.
    mem.rawWriteWord(b, 222);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(mem.rawReadWord(a), 111u);
        EXPECT_EQ(mem.rawReadWord(b), 222u);
    }
    EXPECT_EQ(mem.pagesAllocated(), 2u);
}

TEST(TaggedMemoryFlatIndex, MappedPageBasesAndFbitCountMatchModel)
{
    Rng rng(testSeed(0xbead));
    TaggedMemory mem;
    std::vector<Addr> bases;
    std::uint64_t fbits = 0;
    for (int i = 0; i < 64; ++i) {
        const Addr base = (rng.next() >> 20) * TaggedMemory::pageBytes;
        if (std::find(bases.begin(), bases.end(), base) != bases.end())
            continue;
        bases.push_back(base);
        mem.setFBit(base + 8 * (i % TaggedMemory::pageWords), true);
        ++fbits;
    }
    EXPECT_EQ(mem.fbitCount(), fbits);

    std::vector<Addr> got = mem.mappedPageBases();
    std::sort(bases.begin(), bases.end());
    EXPECT_EQ(got, bases);
}

/** Records every forwarding-state notification. */
struct RecordingListener : FwdStateListener
{
    std::vector<std::pair<Addr, bool>> events;
    void
    fwdStateChanged(Addr word, bool was_fbit) override
    {
        events.emplace_back(word, was_fbit);
    }
};

TEST(TaggedMemoryFlatIndex, ListenerFiresAcrossFlatIndexPages)
{
    // The FTC invalidation hook must keep firing after the index swap:
    // fbit flips and forwarded-payload rewrites notify, plain data
    // writes do not — on fresh and already-materialized pages alike.
    TaggedMemory mem;
    RecordingListener listener;
    mem.setFwdStateListener(&listener);

    const Addr plain = 0x5000, fwd = 0x9000008;

    mem.rawWriteWord(plain, 42); // untagged data write: silent
    EXPECT_TRUE(listener.events.empty());

    mem.setFBit(fwd, true); // tag flip on a fresh page: notifies
    ASSERT_EQ(listener.events.size(), 1u);
    EXPECT_EQ(listener.events[0], std::make_pair(wordAlign(fwd), false));

    mem.rawWriteWord(fwd, 0xabc); // rewrite of a forwarded payload
    ASSERT_EQ(listener.events.size(), 2u);
    EXPECT_EQ(listener.events[1], std::make_pair(wordAlign(fwd), true));

    mem.unforwardedWrite(fwd, 0, false); // untag: notifies
    ASSERT_EQ(listener.events.size(), 3u);
    EXPECT_EQ(listener.events[2], std::make_pair(wordAlign(fwd), true));

    mem.rawWriteWord(fwd, 7); // now plain again: silent
    EXPECT_EQ(listener.events.size(), 3u);
}

} // namespace
} // namespace memfwd
