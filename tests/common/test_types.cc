/** @file Unit tests for the address/word helpers. */

#include <gtest/gtest.h>

#include "common/types.hh"

namespace memfwd
{
namespace
{

TEST(Types, WordAlignRoundsDown)
{
    EXPECT_EQ(wordAlign(0), 0u);
    EXPECT_EQ(wordAlign(7), 0u);
    EXPECT_EQ(wordAlign(8), 8u);
    EXPECT_EQ(wordAlign(15), 8u);
    EXPECT_EQ(wordAlign(0xdeadbeef), 0xdeadbee8u);
}

TEST(Types, WordOffsetWithinWord)
{
    EXPECT_EQ(wordOffset(0), 0u);
    EXPECT_EQ(wordOffset(5), 5u);
    EXPECT_EQ(wordOffset(8), 0u);
    EXPECT_EQ(wordOffset(0xdeadbeef), 7u);
}

TEST(Types, IsWordAligned)
{
    EXPECT_TRUE(isWordAligned(0));
    EXPECT_TRUE(isWordAligned(64));
    EXPECT_FALSE(isWordAligned(4));
    EXPECT_FALSE(isWordAligned(63));
}

TEST(Types, RoundUpToWord)
{
    EXPECT_EQ(roundUpToWord(0), 0u);
    EXPECT_EQ(roundUpToWord(1), 8u);
    EXPECT_EQ(roundUpToWord(8), 8u);
    EXPECT_EQ(roundUpToWord(9), 16u);
    EXPECT_EQ(roundUpToWord(78), 80u);
}

TEST(Types, AlignmentIsIdempotent)
{
    for (Addr a : {Addr(0), Addr(3), Addr(100), Addr(0xffffffffffull)}) {
        EXPECT_EQ(wordAlign(wordAlign(a)), wordAlign(a));
        EXPECT_EQ(wordAlign(a) + wordOffset(a), a);
    }
}

} // namespace
} // namespace memfwd
