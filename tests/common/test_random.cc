/** @file Unit tests for the deterministic PRNG. */

#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"

namespace memfwd
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all 7 values hit in 500 draws
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        const double x = r.real();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng r(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits, 2500, 250);
}

TEST(RngDeathTest, BelowZeroBoundPanics)
{
    Rng r(1);
    EXPECT_DEATH(r.below(0), "below");
}

} // namespace
} // namespace memfwd
