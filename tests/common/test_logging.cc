/** @file Unit tests for the logging/format helpers. */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace memfwd
{
namespace
{

TEST(Logging, StrfmtFormats)
{
    EXPECT_EQ(strfmt("plain"), "plain");
    EXPECT_EQ(strfmt("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strfmt("%#llx", 0xbeefULL), "0xbeef");
}

TEST(Logging, StrfmtEmpty)
{
    EXPECT_EQ(strfmt("%s", ""), "");
}

TEST(Logging, VerboseToggle)
{
    const bool was = verbose();
    setVerbose(false);
    EXPECT_FALSE(verbose());
    setVerbose(true);
    EXPECT_TRUE(verbose());
    setVerbose(was);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(memfwd_panic("boom %d", 7), "boom 7");
}

TEST(LoggingDeathTest, AssertAborts)
{
    EXPECT_DEATH(memfwd_assert(1 == 2, "math broke"), "math broke");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT(memfwd_fatal("bad config"),
                ::testing::ExitedWithCode(1), "bad config");
}

} // namespace
} // namespace memfwd
