/** @file Unit tests for the stats registry. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats_registry.hh"

namespace memfwd
{
namespace
{

TEST(StatsRegistry, StartsEmpty)
{
    StatsRegistry reg;
    EXPECT_EQ(reg.get("anything"), 0u);
    EXPECT_FALSE(reg.has("anything"));
}

TEST(StatsRegistry, AddAccumulates)
{
    StatsRegistry reg;
    reg.add("c");
    reg.add("c", 4);
    EXPECT_EQ(reg.get("c"), 5u);
    EXPECT_TRUE(reg.has("c"));
}

TEST(StatsRegistry, SetOverwrites)
{
    StatsRegistry reg;
    reg.add("c", 10);
    reg.set("c", 3);
    EXPECT_EQ(reg.get("c"), 3u);
}

TEST(StatsRegistry, ClearZeroesButKeepsNames)
{
    StatsRegistry reg;
    reg.add("a", 1);
    reg.add("b", 2);
    reg.clear();
    EXPECT_EQ(reg.get("a"), 0u);
    EXPECT_TRUE(reg.has("a"));
    EXPECT_TRUE(reg.has("b"));
}

TEST(StatsRegistry, DumpSortedWithPrefix)
{
    StatsRegistry reg;
    reg.set("z.last", 1);
    reg.set("a.first", 2);
    std::ostringstream os;
    reg.dump(os, "p.");
    EXPECT_EQ(os.str(), "p.a.first = 2\np.z.last = 1\n");
}

} // namespace
} // namespace memfwd
